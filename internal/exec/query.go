package exec

import (
	"fmt"

	"matview/internal/core"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/storage"
)

// BuildReferencePlan compiles a normalized SPJG query into a straightforward
// left-deep plan: scans with pushed-down single-table conjuncts, hash joins
// on available equijoin conjuncts in FROM order (nested loops when none), a
// final filter for leftover conjuncts, then aggregation or projection. It is
// the baseline evaluator used to validate substitutes and to execute no-view
// plans.
func BuildReferencePlan(q *spjg.Query) (Node, error) {
	widths := make([]int, len(q.Tables))
	offsets := make([]int, len(q.Tables))
	total := 0
	for i, t := range q.Tables {
		widths[i] = len(t.Table.Columns)
		offsets[i] = total
		total += widths[i]
	}
	// flat rewrites a query expression over the wide row (all tables
	// concatenated in FROM order).
	flat := func(e expr.Expr) expr.Expr {
		return expr.MapColumns(e, func(c expr.ColRef) expr.ColRef {
			return expr.ColRef{Tab: 0, Col: offsets[c.Tab] + c.Col}
		})
	}

	var conjuncts []expr.Expr
	if q.Where != nil {
		conjuncts = expr.ToCNF(q.Where)
	}
	applied := make([]bool, len(conjuncts))

	// Per-table pushdown.
	perTable := make([][]expr.Expr, len(q.Tables))
	for ci, c := range conjuncts {
		tabs := expr.TablesUsed(c)
		if len(tabs) == 1 {
			for t := range tabs {
				// Rewrite to the table's local frame.
				local := expr.MapColumns(c, func(r expr.ColRef) expr.ColRef {
					return expr.ColRef{Tab: 0, Col: r.Col}
				})
				perTable[t] = append(perTable[t], local)
				applied[ci] = true
			}
		}
	}

	scan := func(t int) Node {
		var filter expr.Expr
		if len(perTable[t]) > 0 {
			filter = expr.NewAnd(perTable[t]...)
		}
		return &TableScan{Table: q.Tables[t].Table.Name, Filter: filter, NCols: widths[t]}
	}

	// Left-deep joins in FROM order. joined tracks which table instances are
	// inside the current plan; their columns sit at offsets[t]..+widths[t].
	plan := scan(0)
	joined := map[int]bool{0: true}
	curWidth := widths[0]
	curOffset := map[int]int{0: 0} // table → offset within current plan row
	for t := 1; t < len(q.Tables); t++ {
		var lcols, rcols []int
		for ci, c := range conjuncts {
			if applied[ci] {
				continue
			}
			cmp, ok := c.(expr.Cmp)
			if !ok || cmp.Op != expr.EQ {
				continue
			}
			lc, lok := cmp.L.(expr.Column)
			rc, rok := cmp.R.(expr.Column)
			if !lok || !rok {
				continue
			}
			switch {
			case joined[lc.Ref.Tab] && rc.Ref.Tab == t:
				lcols = append(lcols, curOffset[lc.Ref.Tab]+lc.Ref.Col)
				rcols = append(rcols, rc.Ref.Col)
				applied[ci] = true
			case joined[rc.Ref.Tab] && lc.Ref.Tab == t:
				lcols = append(lcols, curOffset[rc.Ref.Tab]+rc.Ref.Col)
				rcols = append(rcols, lc.Ref.Col)
				applied[ci] = true
			}
		}
		right := scan(t)
		if len(lcols) > 0 {
			plan = &HashJoin{L: plan, R: right, LCols: lcols, RCols: rcols}
		} else {
			plan = &NestedLoopJoin{L: plan, R: right}
		}
		joined[t] = true
		curOffset[t] = curWidth
		curWidth += widths[t]
	}
	// curOffset now equals offsets (FROM order), so flat() works for the
	// remaining conjuncts and outputs.
	var leftover []expr.Expr
	for ci, c := range conjuncts {
		if !applied[ci] {
			leftover = append(leftover, flat(c))
		}
	}
	if len(leftover) > 0 {
		plan = &Filter{In: plan, Pred: expr.NewAnd(leftover...)}
	}

	if q.IsAggregate() {
		groupBy := make([]expr.Expr, len(q.GroupBy))
		for i, g := range q.GroupBy {
			groupBy[i] = flat(g)
		}
		var aggs []AggSpec
		// Aggregate output columns in output order; scalar outputs must map
		// to grouping expressions.
		keyPos := func(e expr.Expr) (int, error) {
			ne := expr.Normalize(e)
			for i, g := range q.GroupBy {
				if expr.Equal(ne, expr.Normalize(g)) {
					return i, nil
				}
			}
			return -1, fmt.Errorf("exec: output %v not in GROUP BY", e)
		}
		var projExprs []expr.Expr
		aggBase := len(groupBy)
		for _, o := range q.Outputs {
			if o.Agg != nil {
				spec := AggSpec{Num: SimpleAgg{Kind: o.Agg.Kind}}
				if o.Agg.Arg != nil {
					spec.Num.Arg = flat(o.Agg.Arg)
				}
				aggs = append(aggs, spec)
				projExprs = append(projExprs, expr.Col(0, aggBase+len(aggs)-1))
				continue
			}
			pos, err := keyPos(o.Expr)
			if err != nil {
				return nil, err
			}
			projExprs = append(projExprs, expr.Col(0, pos))
		}
		plan = &HashAgg{In: plan, GroupBy: groupBy, Aggs: aggs}
		return &Project{In: plan, Exprs: projExprs}, nil
	}

	projExprs := make([]expr.Expr, len(q.Outputs))
	for i, o := range q.Outputs {
		projExprs[i] = flat(o.Expr)
	}
	return &Project{In: plan, Exprs: projExprs}, nil
}

// RunQuery evaluates a normalized SPJG query with the reference plan.
func RunQuery(db storage.Reader, q *spjg.Query) ([]storage.Row, error) {
	plan, err := BuildReferencePlan(q)
	if err != nil {
		return nil, err
	}
	return plan.Run(db)
}

// ViewsReferenced walks a plan and returns the names of the materialized
// views it scans, deduplicated in first-visit order. The server uses it to
// attribute executions to views for the per-view usage counters.
func ViewsReferenced(n Node) []string {
	var out []string
	seen := map[string]bool{}
	var walk func(Node)
	walk = func(n Node) {
		if n == nil {
			return
		}
		if vs, ok := n.(*ViewScan); ok && !seen[vs.View] {
			seen[vs.View] = true
			out = append(out, vs.View)
		}
		for _, c := range n.Children() {
			walk(c)
		}
	}
	walk(n)
	return out
}

// Materialize evaluates a view definition and stores its rows, making the
// view available to ViewScan. It returns the stored view.
func Materialize(db *storage.Database, name string, def *spjg.Query) (*storage.MaterializedView, error) {
	rows, err := RunQuery(db, def)
	if err != nil {
		return nil, err
	}
	return db.PutView(name, len(def.Outputs), rows), nil
}

// BuildSubstitutePlan compiles a view substitute into a physical plan: a
// filtered scan of the materialized view, an optional compensating group-by,
// and a final projection.
func BuildSubstitutePlan(sub *core.Substitute) Node {
	return BuildSubstitutePlanWithScan(sub, &ViewScan{
		View:   sub.View.Name,
		Filter: sub.Filter,
		NCols:  len(sub.View.Def.Outputs),
	})
}

// BuildSubstitutePlanWithScan is BuildSubstitutePlan with a caller-supplied
// access path (e.g. an index seek carrying part of the compensating filter
// as EqCols/EqVals). The scan must produce the view's full output rows.
//
// Substitutes with backjoins (§7) hash-join the view back to each base table
// on the unique key the view outputs; the compensating filter then runs over
// the widened row, and all multi-table column references (Tab k > 0) are
// flattened to offsets in that row.
func BuildSubstitutePlanWithScan(sub *core.Substitute, scan *ViewScan) Node {
	var plan Node = scan
	flatten := func(e expr.Expr) expr.Expr { return e }

	if len(sub.Backjoins) > 0 {
		// The filter may reference backjoined columns, so it must run after
		// the joins, not inside the scan.
		filter := scan.Filter
		scan.Filter = nil
		offsets := make([]int, len(sub.Backjoins)+1)
		width := scan.NCols
		for k, bj := range sub.Backjoins {
			offsets[k+1] = width
			right := &TableScan{Table: bj.Table.Name, NCols: len(bj.Table.Columns)}
			plan = &HashJoin{
				L:     plan,
				R:     right,
				LCols: bj.ViewOrds, // view columns stay leftmost, ordinals valid
				RCols: bj.KeyCols,
			}
			width += len(bj.Table.Columns)
		}
		flatten = func(e expr.Expr) expr.Expr {
			return expr.MapColumns(e, func(r expr.ColRef) expr.ColRef {
				return expr.ColRef{Tab: 0, Col: offsets[r.Tab] + r.Col}
			})
		}
		if filter != nil {
			plan = &Filter{In: plan, Pred: flatten(filter)}
		}
	}

	if !sub.Regroup {
		exprs := make([]expr.Expr, len(sub.Outputs))
		for i, o := range sub.Outputs {
			exprs[i] = flatten(o.Expr)
		}
		return &Project{In: plan, Exprs: exprs}
	}
	var aggs []AggSpec
	var projExprs []expr.Expr
	aggBase := len(sub.GroupBy)
	groupBy := make([]expr.Expr, len(sub.GroupBy))
	for i, g := range sub.GroupBy {
		groupBy[i] = flatten(g)
	}
	// Group keys in substitute order; scalar outputs map to their key.
	keyPos := func(e expr.Expr) int {
		ne := expr.Normalize(e)
		for i, g := range sub.GroupBy {
			if expr.Equal(ne, expr.Normalize(g)) {
				return i
			}
		}
		return -1
	}
	flattenArg := func(e expr.Expr) expr.Expr {
		if e == nil {
			return nil // COUNT(*) has no argument
		}
		return flatten(e)
	}
	for _, o := range sub.Outputs {
		if o.Agg != nil {
			spec := AggSpec{Num: SimpleAgg{Kind: o.Agg.Kind, Arg: flattenArg(o.Agg.Arg)}}
			if o.DivBy != nil {
				spec.Den = &SimpleAgg{Kind: o.DivBy.Kind, Arg: flattenArg(o.DivBy.Arg)}
			}
			aggs = append(aggs, spec)
			projExprs = append(projExprs, expr.Col(0, aggBase+len(aggs)-1))
			continue
		}
		if pos := keyPos(o.Expr); pos >= 0 {
			projExprs = append(projExprs, expr.Col(0, pos))
		} else {
			// A scalar output that is not a group key can only be a constant.
			projExprs = append(projExprs, o.Expr)
		}
	}
	plan = &HashAgg{In: plan, GroupBy: groupBy, Aggs: aggs}
	return &Project{In: plan, Exprs: projExprs}
}

// RunSubstitute evaluates a substitute against the materialized view.
func RunSubstitute(db storage.Reader, sub *core.Substitute) ([]storage.Row, error) {
	return BuildSubstitutePlan(sub).Run(db)
}
