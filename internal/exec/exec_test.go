package exec

import (
	"testing"

	"matview/internal/catalog"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// smallDB builds a two-table database:
//
//	dept(id PK, name)        : 2 rows
//	emp(id PK, dept_id FK, salary, note) : 5 rows
func smallDB(t *testing.T) *storage.Database {
	t.Helper()
	c := catalog.New()
	if err := c.Add(&catalog.Table{
		Name: "dept",
		Columns: []catalog.Column{
			{Name: "id", Type: sqlvalue.KindInt, NotNull: true},
			{Name: "name", Type: sqlvalue.KindString, NotNull: true},
		},
		PrimaryKey: []int{0},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Add(&catalog.Table{
		Name: "emp",
		Columns: []catalog.Column{
			{Name: "id", Type: sqlvalue.KindInt, NotNull: true},
			{Name: "dept_id", Type: sqlvalue.KindInt, NotNull: true},
			{Name: "salary", Type: sqlvalue.KindInt, NotNull: true},
			{Name: "note", Type: sqlvalue.KindString},
		},
		PrimaryKey: []int{0},
		Foreign: []catalog.ForeignKey{
			{Name: "fk", Columns: []int{1}, RefTable: "dept", RefColumns: []int{0}},
		},
	}); err != nil {
		t.Fatal(err)
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(c)
	for _, r := range []storage.Row{
		{sqlvalue.NewInt(1), sqlvalue.NewString("eng")},
		{sqlvalue.NewInt(2), sqlvalue.NewString("ops")},
	} {
		if err := db.Table("dept").Insert(r); err != nil {
			t.Fatal(err)
		}
	}
	note := func(s string) sqlvalue.Value {
		if s == "" {
			return sqlvalue.Null
		}
		return sqlvalue.NewString(s)
	}
	for _, r := range [][4]any{
		{1, 1, 100, "alpha"},
		{2, 1, 200, "beta"},
		{3, 1, 300, ""},
		{4, 2, 400, "gamma"},
		{5, 2, 500, "alpha beta"},
	} {
		row := storage.Row{
			sqlvalue.NewInt(int64(r[0].(int))),
			sqlvalue.NewInt(int64(r[1].(int))),
			sqlvalue.NewInt(int64(r[2].(int))),
			note(r[3].(string)),
		}
		if err := db.Table("emp").Insert(row); err != nil {
			t.Fatal(err)
		}
	}
	db.RefreshStats()
	return db
}

func TestTableScanWithFilter(t *testing.T) {
	db := smallDB(t)
	scan := &TableScan{Table: "emp", NCols: 4,
		Filter: expr.NewCmp(expr.GT, expr.Col(0, 2), expr.CInt(250))}
	rows, err := scan.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d, want 3", len(rows))
	}
	if _, err := (&TableScan{Table: "ghost"}).Run(db); err == nil {
		t.Fatal("scan of unknown table succeeded")
	}
}

func TestHashJoin(t *testing.T) {
	db := smallDB(t)
	j := &HashJoin{
		L:     &TableScan{Table: "emp", NCols: 4},
		R:     &TableScan{Table: "dept", NCols: 2},
		LCols: []int{1},
		RCols: []int{0},
	}
	rows, err := j.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 5 {
		t.Fatalf("join rows = %d, want 5", len(rows))
	}
	if len(rows[0]) != 6 || j.Width() != 6 {
		t.Fatalf("join width = %d", len(rows[0]))
	}
}

func TestHashJoinNullKeysNeverMatch(t *testing.T) {
	db := smallDB(t)
	// Join emp.note = emp.note (self join on a nullable column): the row
	// with NULL note must not join with itself.
	j := &HashJoin{
		L:     &TableScan{Table: "emp", NCols: 4},
		R:     &TableScan{Table: "emp", NCols: 4},
		LCols: []int{3},
		RCols: []int{3},
	}
	rows, err := j.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	// Non-null notes: alpha, beta, gamma, "alpha beta" — all distinct → 4
	// self-pairs; NULL row contributes none.
	if len(rows) != 4 {
		t.Fatalf("join rows = %d, want 4", len(rows))
	}
}

func TestNestedLoopJoin(t *testing.T) {
	db := smallDB(t)
	j := &NestedLoopJoin{
		L:    &TableScan{Table: "emp", NCols: 4},
		R:    &TableScan{Table: "dept", NCols: 2},
		Pred: expr.NewCmp(expr.GT, expr.Col(0, 2), expr.CInt(450)),
	}
	rows, err := j.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	// One emp row (salary 500) × 2 dept rows.
	if len(rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(rows))
	}
}

func TestHashAggGrouped(t *testing.T) {
	db := smallDB(t)
	agg := &HashAgg{
		In:      &TableScan{Table: "emp", NCols: 4},
		GroupBy: []expr.Expr{expr.Col(0, 1)},
		Aggs: []AggSpec{
			{Num: SimpleAgg{Kind: spjg.AggCountStar}},
			{Num: SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, 2)}},
			{Num: SimpleAgg{Kind: spjg.AggAvg, Arg: expr.Col(0, 2)}},
		},
	}
	rows, err := agg.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("groups = %d", len(rows))
	}
	byDept := map[int64]storage.Row{}
	for _, r := range rows {
		byDept[r[0].Int()] = r
	}
	d1 := byDept[1]
	if d1[1].Int() != 3 || d1[2].Int() != 600 {
		t.Fatalf("dept 1 = %v", d1)
	}
	if av, _ := d1[3].AsFloat(); av != 200 {
		t.Fatalf("dept 1 avg = %v", d1[3])
	}
	d2 := byDept[2]
	if d2[1].Int() != 2 || d2[2].Int() != 900 {
		t.Fatalf("dept 2 = %v", d2)
	}
}

func TestHashAggScalarOnEmptyInput(t *testing.T) {
	db := smallDB(t)
	agg := &HashAgg{
		In: &TableScan{Table: "emp", NCols: 4,
			Filter: expr.NewCmp(expr.GT, expr.Col(0, 2), expr.CInt(9999))},
		Aggs: []AggSpec{
			{Num: SimpleAgg{Kind: spjg.AggCountStar}},
			{Num: SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, 2)}},
		},
	}
	rows, err := agg.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 1 {
		t.Fatalf("scalar agg over empty input: %d rows, want 1", len(rows))
	}
	if rows[0][0].Int() != 0 || !rows[0][1].IsNull() {
		t.Fatalf("row = %v, want (0, NULL)", rows[0])
	}
	// Grouped aggregation over empty input: zero rows.
	agg.GroupBy = []expr.Expr{expr.Col(0, 1)}
	rows, err = agg.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 0 {
		t.Fatalf("grouped agg over empty input: %d rows, want 0", len(rows))
	}
}

func TestHashAggSumIgnoresNulls(t *testing.T) {
	db := smallDB(t)
	// SUM over note-is-null ? NULL : salary — exercised via CASE-less trick:
	// sum a column that is NULL in one row: build a projection first.
	proj := &Project{
		In:    &TableScan{Table: "emp", NCols: 4},
		Exprs: []expr.Expr{expr.Col(0, 3)}, // note (1 NULL)
	}
	agg := &HashAgg{In: proj, Aggs: []AggSpec{
		{Num: SimpleAgg{Kind: spjg.AggCountStar}},
	}}
	rows, err := agg.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if rows[0][0].Int() != 5 {
		t.Fatalf("COUNT(*) = %v, want 5 (NULLs still count rows)", rows[0][0])
	}
}

func TestAggSpecWithDen(t *testing.T) {
	db := smallDB(t)
	// ratio = SUM(salary) / COUNT(*) per dept — the AVG-from-sums shape.
	agg := &HashAgg{
		In:      &TableScan{Table: "emp", NCols: 4},
		GroupBy: []expr.Expr{expr.Col(0, 1)},
		Aggs: []AggSpec{{
			Num: SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, 2)},
			Den: &SimpleAgg{Kind: spjg.AggCountStar},
		}},
	}
	rows, err := agg.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	byDept := map[int64]float64{}
	for _, r := range rows {
		f, _ := r[1].AsFloat()
		byDept[r[0].Int()] = f
	}
	if byDept[1] != 200 || byDept[2] != 450 {
		t.Fatalf("ratios = %v", byDept)
	}
}

func TestProjectAndFilter(t *testing.T) {
	db := smallDB(t)
	p := &Project{
		In: &Filter{
			In:   &TableScan{Table: "emp", NCols: 4},
			Pred: expr.Like{E: expr.Col(0, 3), Pattern: expr.CStr("%alpha%")},
		},
		Exprs: []expr.Expr{
			expr.Col(0, 0),
			expr.NewArith(expr.Mul, expr.Col(0, 2), expr.CInt(2)),
		},
	}
	rows, err := p.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	// Matching rows are emp 1 (salary 100) and emp 5 (salary 500); the
	// projected second column doubles the salary.
	want := map[int64]int64{1: 200, 5: 1000}
	for _, r := range rows {
		if want[r[0].Int()] != r[1].Int() {
			t.Fatalf("row = %v", r)
		}
	}
}

func TestRunQueryReference(t *testing.T) {
	db := smallDB(t)
	// SELECT d.name, SUM(e.salary) FROM emp e, dept d
	// WHERE e.dept_id = d.id AND e.salary >= 200 GROUP BY d.name
	q := &spjg.Query{
		Tables: []spjg.TableRef{
			{Table: db.Catalog.Table("emp")},
			{Table: db.Catalog.Table("dept")},
		},
		Where: expr.NewAnd(
			expr.Eq(expr.Col(0, 1), expr.Col(1, 0)),
			expr.NewCmp(expr.GE, expr.Col(0, 2), expr.CInt(200)),
		),
		GroupBy: []expr.Expr{expr.Col(1, 1)},
		Outputs: []spjg.OutputColumn{
			{Name: "name", Expr: expr.Col(1, 1)},
			{Name: "total", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, 2)}},
		},
	}
	if err := q.Validate(); err != nil {
		t.Fatal(err)
	}
	rows, err := RunQuery(db, q)
	if err != nil {
		t.Fatal(err)
	}
	got := map[string]int64{}
	for _, r := range rows {
		got[r[0].Str()] = r[1].Int()
	}
	if got["eng"] != 500 || got["ops"] != 900 {
		t.Fatalf("result = %v", got)
	}
}

func TestRunQueryLeftoverConjunct(t *testing.T) {
	db := smallDB(t)
	// Non-equi cross-table predicate forces a leftover filter.
	q := &spjg.Query{
		Tables: []spjg.TableRef{
			{Table: db.Catalog.Table("emp")},
			{Table: db.Catalog.Table("dept")},
		},
		Where: expr.NewCmp(expr.GT, expr.Col(0, 2),
			expr.NewArith(expr.Mul, expr.Col(1, 0), expr.CInt(150))),
		Outputs: []spjg.OutputColumn{
			{Name: "e", Expr: expr.Col(0, 0)},
			{Name: "d", Expr: expr.Col(1, 0)},
		},
	}
	rows, err := RunQuery(db, q)
	if err != nil {
		t.Fatal(err)
	}
	// salary > dept.id*150: dept 1 → salary > 150 (4 rows); dept 2 →
	// salary > 300 (2 rows).
	if len(rows) != 6 {
		t.Fatalf("rows = %d, want 6", len(rows))
	}
}

func TestMaterializeAndViewScan(t *testing.T) {
	db := smallDB(t)
	def := &spjg.Query{
		Tables: []spjg.TableRef{{Table: db.Catalog.Table("emp")}},
		Where:  expr.NewCmp(expr.GE, expr.Col(0, 2), expr.CInt(200)),
		Outputs: []spjg.OutputColumn{
			{Name: "id", Expr: expr.Col(0, 0)},
			{Name: "salary", Expr: expr.Col(0, 2)},
		},
	}
	mv, err := Materialize(db, "highpaid", def)
	if err != nil {
		t.Fatal(err)
	}
	if mv.RowCount() != 4 {
		t.Fatalf("materialized %d rows, want 4", mv.RowCount())
	}
	scan := &ViewScan{View: "highpaid", NCols: 2,
		Filter: expr.NewCmp(expr.GE, expr.Col(0, 1), expr.CInt(400))}
	rows, err := scan.Run(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("filtered view rows = %d", len(rows))
	}
	if _, err := (&ViewScan{View: "ghost"}).Run(db); err == nil {
		t.Fatal("scan of missing view succeeded")
	}
}

func TestExplain(t *testing.T) {
	plan := &Project{
		In: &HashJoin{
			L: &TableScan{Table: "emp", NCols: 4},
			R: &TableScan{Table: "dept", NCols: 2},
		},
		Exprs: []expr.Expr{expr.Col(0, 0)},
	}
	s := Explain(plan)
	for _, frag := range []string{"Project", "HashJoin", "TableScan(emp)", "TableScan(dept)"} {
		if !contains(s, frag) {
			t.Errorf("Explain missing %q:\n%s", frag, s)
		}
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (func() bool {
		for i := 0; i+len(sub) <= len(s); i++ {
			if s[i:i+len(sub)] == sub {
				return true
			}
		}
		return false
	})()
}

func TestNormalizeRowsSortsCanonically(t *testing.T) {
	a := []storage.Row{
		{sqlvalue.NewInt(2), sqlvalue.NewFloat(1.5)},
		{sqlvalue.NewInt(1), sqlvalue.NewString("x")},
	}
	b := []storage.Row{
		{sqlvalue.NewInt(1), sqlvalue.NewString("x")},
		{sqlvalue.NewInt(2), sqlvalue.NewFloat(1.5)},
	}
	na, nb := NormalizeRows(a), NormalizeRows(b)
	for i := range na {
		if na[i] != nb[i] {
			t.Fatalf("normalization differs: %v vs %v", na, nb)
		}
	}
}

func TestSameRows(t *testing.T) {
	a := []storage.Row{
		{sqlvalue.NewInt(2), sqlvalue.NewFloat(1e7 + 0.001)},
		{sqlvalue.NewInt(1), sqlvalue.NewString("x")},
	}
	b := []storage.Row{
		{sqlvalue.NewInt(1), sqlvalue.NewString("x")},
		{sqlvalue.NewInt(2), sqlvalue.NewFloat(1e7)},
	}
	if !SameRows(a, b) {
		t.Fatal("rows equal within tolerance reported different")
	}
	c := []storage.Row{
		{sqlvalue.NewInt(1), sqlvalue.NewString("x")},
		{sqlvalue.NewInt(2), sqlvalue.NewFloat(1e7 + 100)},
	}
	if SameRows(a, c) {
		t.Fatal("clearly different floats reported equal")
	}
	if SameRows(a, a[:1]) {
		t.Fatal("different cardinalities reported equal")
	}
	// NULL vs value must differ; NULL vs NULL must match.
	d := []storage.Row{{sqlvalue.Null}}
	e := []storage.Row{{sqlvalue.NewFloat(0)}}
	if SameRows(d, e) {
		t.Fatal("NULL equated with 0")
	}
	if !SameRows(d, d) {
		t.Fatal("NULL row not equal to itself")
	}
	// Int vs integral float compare equal (rolled-up sums may change type).
	f := []storage.Row{{sqlvalue.NewInt(5)}}
	g := []storage.Row{{sqlvalue.NewFloat(5)}}
	if !SameRows(f, g) {
		t.Fatal("5 and 5.0 reported different")
	}
}
