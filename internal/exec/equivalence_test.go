package exec

import (
	"testing"

	"matview/internal/core"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/tpch"
)

// TestSubstituteEquivalence is the end-to-end soundness check of the whole
// reproduction: for a battery of (view, query) pairs over generated TPC-H
// data, whenever the matcher produces a substitute, executing the substitute
// against the materialized view must return exactly the rows of the original
// query (bag semantics).
func TestSubstituteEquivalence(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 42) // lineitem ≈ 6000 rows
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := core.NewMatcher(cat, core.DefaultOptions())
	tr := func(name string) spjg.TableRef { return spjg.TableRef{Table: cat.Table(name)} }

	l, o := 0, 1
	gross := expr.NewArith(expr.Mul, expr.Col(l, tpch.LQuantity), expr.Col(l, tpch.LExtendedprice))

	type pair struct {
		name  string
		view  *spjg.Query
		query *spjg.Query
	}
	pairs := []pair{
		{
			name: "spj range compensation",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem")},
				Where:  expr.NewCmp(expr.GT, expr.Col(0, tpch.LPartkey), expr.CInt(50)),
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(0, tpch.LOrderkey)},
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "l_quantity", Expr: expr.Col(0, tpch.LQuantity)},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem")},
				Where: expr.NewAnd(
					expr.NewCmp(expr.GT, expr.Col(0, tpch.LPartkey), expr.CInt(100)),
					expr.NewCmp(expr.LE, expr.Col(0, tpch.LPartkey), expr.CInt(150)),
				),
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(0, tpch.LOrderkey)},
					{Name: "l_quantity", Expr: expr.Col(0, tpch.LQuantity)},
				},
			},
		},
		{
			name: "join view answering join query with equality compensation",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem"), tr("orders")},
				Where:  expr.Eq(expr.Col(l, tpch.LOrderkey), expr.Col(o, tpch.OOrderkey)),
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(l, tpch.LOrderkey)},
					{Name: "o_custkey", Expr: expr.Col(o, tpch.OCustkey)},
					{Name: "l_shipdate", Expr: expr.Col(l, tpch.LShipdate)},
					{Name: "l_commitdate", Expr: expr.Col(l, tpch.LCommitdate)},
					{Name: "l_quantity", Expr: expr.Col(l, tpch.LQuantity)},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem"), tr("orders")},
				Where: expr.NewAnd(
					expr.Eq(expr.Col(l, tpch.LOrderkey), expr.Col(o, tpch.OOrderkey)),
					expr.Eq(expr.Col(l, tpch.LShipdate), expr.Col(l, tpch.LCommitdate)),
				),
				Outputs: []spjg.OutputColumn{
					{Name: "o_custkey", Expr: expr.Col(o, tpch.OCustkey)},
					{Name: "l_quantity", Expr: expr.Col(l, tpch.LQuantity)},
				},
			},
		},
		{
			name: "extra table elimination",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem"), tr("orders")},
				Where:  expr.Eq(expr.Col(l, tpch.LOrderkey), expr.Col(o, tpch.OOrderkey)),
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(l, tpch.LOrderkey)},
					{Name: "l_partkey", Expr: expr.Col(l, tpch.LPartkey)},
					{Name: "l_quantity", Expr: expr.Col(l, tpch.LQuantity)},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem")},
				Where:  expr.NewCmp(expr.LT, expr.Col(0, tpch.LPartkey), expr.CInt(100)),
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(0, tpch.LOrderkey)},
					{Name: "l_quantity", Expr: expr.Col(0, tpch.LQuantity)},
				},
			},
		},
		{
			name: "aggregation rollup",
			view: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.LPartkey), expr.Col(0, tpch.LSuppkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "l_suppkey", Expr: expr.Col(0, tpch.LSuppkey)},
					{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
					{Name: "qty", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.LQuantity)}},
				},
			},
			query: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.LPartkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "n", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
					{Name: "qty", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.LQuantity)}},
					{Name: "avg_qty", Agg: &spjg.Aggregate{Kind: spjg.AggAvg, Arg: expr.Col(0, tpch.LQuantity)}},
				},
			},
		},
		{
			name: "aggregation equal grouping with avg",
			view: &spjg.Query{
				Tables:  []spjg.TableRef{tr("orders")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
					{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
					{Name: "total", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.OTotalprice)}},
				},
			},
			query: &spjg.Query{
				Tables:  []spjg.TableRef{tr("orders")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
					{Name: "avg_total", Agg: &spjg.Aggregate{Kind: spjg.AggAvg, Arg: expr.Col(0, tpch.OTotalprice)}},
					{Name: "n", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
				},
			},
		},
		{
			name: "agg query over spj view",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem")},
				Where:  expr.NewCmp(expr.GT, expr.Col(0, tpch.LPartkey), expr.CInt(10)),
				Outputs: []spjg.OutputColumn{
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "l_quantity", Expr: expr.Col(0, tpch.LQuantity)},
					{Name: "gross", Expr: gross},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("lineitem")},
				Where: expr.NewAnd(
					expr.NewCmp(expr.GT, expr.Col(0, tpch.LPartkey), expr.CInt(10)),
					expr.NewCmp(expr.LE, expr.Col(0, tpch.LPartkey), expr.CInt(200)),
				),
				GroupBy: []expr.Expr{expr.Col(0, tpch.LPartkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "revenue", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: gross}},
				},
			},
		},
		{
			name: "example 4 inner block",
			view: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem"), tr("orders")},
				Where:   expr.Eq(expr.Col(l, tpch.LOrderkey), expr.Col(o, tpch.OOrderkey)),
				GroupBy: []expr.Expr{expr.Col(o, tpch.OCustkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "o_custkey", Expr: expr.Col(o, tpch.OCustkey)},
					{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
					{Name: "revenue", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: gross}},
				},
			},
			query: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem"), tr("orders")},
				Where:   expr.Eq(expr.Col(l, tpch.LOrderkey), expr.Col(o, tpch.OOrderkey)),
				GroupBy: []expr.Expr{expr.Col(o, tpch.OCustkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "o_custkey", Expr: expr.Col(o, tpch.OCustkey)},
					{Name: "rev", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: gross}},
				},
			},
		},
	}

	for i, p := range pairs {
		p := p
		t.Run(p.name, func(t *testing.T) {
			if err := p.query.Validate(); err != nil {
				t.Fatal(err)
			}
			v, err := m.NewView(i, "mv", p.view)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := Materialize(db, "mv", p.view); err != nil {
				t.Fatal(err)
			}
			sub := m.Match(p.query, v)
			if sub == nil {
				t.Fatal("matcher rejected the view")
			}
			want, err := RunQuery(db, p.query)
			if err != nil {
				t.Fatal(err)
			}
			got, err := RunSubstitute(db, sub)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("test query returned no rows; not a meaningful check")
			}
			if !SameRows(want, got) {
				t.Fatalf("substitute result differs from query result (%d vs %d rows)\nsubstitute: %s",
					len(want), len(got), sub)
			}
		})
	}
}
