package exec_test

import (
	"fmt"
	"os"
	"runtime"
	"strconv"
	"sync"
	"testing"

	"matview/internal/exec"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/storage"
	"matview/internal/tpch"
)

// The BenchmarkExec* suite measures raw plan execution — no optimizer, no
// parser — on TPC-H data, comparing the seed row-at-a-time reference
// evaluator against the batched engine at several worker counts. The scale
// factor defaults to 0.5 (the paper's evaluation scale); set EXEC_BENCH_SF to
// run quicker sanity passes (CI smoke uses -benchtime=1x, where generation
// dominates anyway).
var execBench struct {
	once sync.Once
	db   *storage.Database
	err  error
}

func execBenchDB(b *testing.B) *storage.Database {
	b.Helper()
	execBench.once.Do(func() {
		sf := 0.5
		if s := os.Getenv("EXEC_BENCH_SF"); s != "" {
			if v, err := strconv.ParseFloat(s, 64); err == nil && v > 0 {
				sf = v
			}
		}
		execBench.db, execBench.err = tpch.NewDatabase(sf, 7)
	})
	if execBench.err != nil {
		b.Fatal(execBench.err)
	}
	return execBench.db
}

// scanPlan projects two lineitem columns — pure per-row expression
// throughput over the full table.
func scanPlan(db *storage.Database) exec.Node {
	n := len(db.Catalog.Table("lineitem").Columns)
	return &exec.Project{
		In:    &exec.TableScan{Table: "lineitem", NCols: n},
		Exprs: []expr.Expr{expr.Col(0, tpch.LOrderkey), expr.Col(0, tpch.LQuantity)},
	}
}

// filterScanPlan is the allocation benchmark: a selective conjunctive filter
// (TPC-H Q6 shape — a discount band around 5% plus a quantity cut) evaluated
// on every lineitem row, output rows passed through unchanged. The seed
// interpreter heap-allocates the ABS argument slice for every row; the
// compiled form evaluates the whole predicate allocation-free.
func filterScanPlan(db *storage.Database) exec.Node {
	n := len(db.Catalog.Table("lineitem").Columns)
	discountBand := expr.NewCmp(expr.LE,
		expr.Func{Name: "ABS", Args: []expr.Expr{
			expr.NewArith(expr.Sub, expr.Col(0, tpch.LDiscount), expr.CFloat(0.05)),
		}},
		expr.CFloat(0.01))
	return &exec.TableScan{
		Table: "lineitem",
		NCols: n,
		Filter: expr.NewAnd(
			discountBand,
			expr.NewCmp(expr.LT, expr.Col(0, tpch.LQuantity), expr.CInt(10)),
		),
	}
}

// join3Plan is a left-deep 3-way join: filtered orders ⋈ customer ⋈ lineitem.
func join3Plan(db *storage.Database) exec.Node {
	no := len(db.Catalog.Table("orders").Columns)
	nc := len(db.Catalog.Table("customer").Columns)
	nl := len(db.Catalog.Table("lineitem").Columns)
	oc := &exec.HashJoin{
		L: &exec.TableScan{Table: "orders", NCols: no,
			Filter: expr.NewCmp(expr.GT, expr.Col(0, tpch.OTotalprice), expr.CFloat(570000))},
		R:     &exec.TableScan{Table: "customer", NCols: nc},
		LCols: []int{tpch.OCustkey},
		RCols: []int{tpch.CCustkey},
	}
	return &exec.HashJoin{
		L:     oc,
		R:     &exec.TableScan{Table: "lineitem", NCols: nl},
		LCols: []int{tpch.OOrderkey},
		RCols: []int{tpch.LOrderkey},
	}
}

// groupAggJoinPlan is the acceptance benchmark: part ⋈ lineitem grouped by
// brand with COUNT(*), SUM and AVG — the shape every rollup view
// materialization and repair runs.
func groupAggJoinPlan(db *storage.Database) exec.Node {
	np := len(db.Catalog.Table("part").Columns)
	nl := len(db.Catalog.Table("lineitem").Columns)
	join := &exec.HashJoin{
		L:     &exec.TableScan{Table: "part", NCols: np},
		R:     &exec.TableScan{Table: "lineitem", NCols: nl},
		LCols: []int{tpch.PPartkey},
		RCols: []int{tpch.LPartkey},
	}
	return &exec.HashAgg{
		In:      join,
		GroupBy: []expr.Expr{expr.Col(0, tpch.PBrand)},
		Aggs: []exec.AggSpec{
			{Num: exec.SimpleAgg{Kind: spjg.AggCountStar}},
			{Num: exec.SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, np+tpch.LQuantity)}},
			{Num: exec.SimpleAgg{Kind: spjg.AggAvg, Arg: expr.Col(0, np+tpch.LExtendedprice)}},
		},
	}
}

func benchPlan(b *testing.B, build func(*storage.Database) exec.Node) {
	db := execBenchDB(b)
	plan := build(db)
	run := func(b *testing.B, exe func() ([]storage.Row, error), scanStats bool) {
		b.ReportAllocs()
		if scanStats {
			exec.ResetScanStats()
		}
		b.ResetTimer()
		var rows []storage.Row
		for i := 0; i < b.N; i++ {
			var err error
			rows, err = exe()
			if err != nil {
				b.Fatal(err)
			}
		}
		b.StopTimer()
		if b.N > 0 {
			b.ReportMetric(float64(len(rows)), "rows")
			if scanStats {
				// Per-op block counters: how many 1024-row blocks one run
				// scanned versus pruned via zone maps.
				st := exec.ReadScanStats()
				b.ReportMetric(float64(st.BlocksScanned)/float64(b.N), "blk-scanned/op")
				b.ReportMetric(float64(st.BlocksSkipped)/float64(b.N), "blk-skipped/op")
			}
		}
	}
	b.Run("seed", func(b *testing.B) {
		run(b, func() ([]storage.Row, error) { return exec.RunReference(db, plan) }, false)
	})
	for _, w := range []int{1, 4} {
		b.Run(fmt.Sprintf("engine-w%d", w), func(b *testing.B) {
			eng := &exec.Engine{Workers: w}
			run(b, func() ([]storage.Row, error) { return eng.Run(db, plan) }, true)
		})
	}
}

func BenchmarkExecScan(b *testing.B)       { benchPlan(b, scanPlan) }
func BenchmarkExecFilterScan(b *testing.B) { benchPlan(b, filterScanPlan) }
func BenchmarkExecJoin3Way(b *testing.B)   { benchPlan(b, join3Plan) }

func BenchmarkExecGroupAggJoin(b *testing.B) {
	benchPlan(b, groupAggJoinPlan)
	// Allocation-parity guard: probe/gather/agg scratch is pooled per worker,
	// so adding workers must not add per-row allocations — only fixed
	// per-worker state (sinks, maps, pooled buffers on first use). The w4 run
	// once allocated ~30% more than w1 because each worker grew private probe
	// scratch from nothing; with pooling the two must stay within 20% (plus a
	// fixed per-worker allowance for the extra shards and their merge).
	b.Run("alloc-parity", func(b *testing.B) {
		db := execBenchDB(b)
		plan := groupAggJoinPlan(db)
		w1 := measureRunAllocs(b, db, plan, 1)
		w4 := measureRunAllocs(b, db, plan, 4)
		b.ReportMetric(float64(w1), "w1-allocs")
		b.ReportMetric(float64(w4), "w4-allocs")
		if limit := w1+w1/5+20000; w4 > limit {
			b.Fatalf("w4 allocs %d exceed bound %d (w1=%d): per-worker scratch is not pooled",
				w4, limit, w1)
		}
	})
}

// measureRunAllocs reports the mallocs of one steady-state engine run (one
// warm-up run fills the scratch pools and the build/gather slabs' caches).
func measureRunAllocs(b *testing.B, db *storage.Database, plan exec.Node, workers int) uint64 {
	b.Helper()
	eng := &exec.Engine{Workers: workers}
	if _, err := eng.Run(db, plan); err != nil {
		b.Fatal(err)
	}
	var before, after runtime.MemStats
	runtime.ReadMemStats(&before)
	if _, err := eng.Run(db, plan); err != nil {
		b.Fatal(err)
	}
	runtime.ReadMemStats(&after)
	return after.Mallocs - before.Mallocs
}
