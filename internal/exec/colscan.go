package exec

import (
	"fmt"
	"sync/atomic"

	"matview/internal/expr"
	"matview/internal/ranges"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// Block-skip counters, package-global so every engine (server, shell,
// maintainer deltas, benchmarks) feeds the same ledger. A "block" here is a
// block segment visited by one morsel; with the default 1024-row batch size,
// morsels align with storage blocks and segments == blocks.
var (
	scanBlocksScanned atomic.Int64
	scanBlocksSkipped atomic.Int64
	// Late-materialization join counters (gather.go/joinkey.go): probe-side
	// tuples entering a hash-join probe, tuples whose key found at least one
	// build match, and rows the gather stage actually materialized. The gap
	// between probed and gathered is the work late materialization avoids.
	scanRowsProbed   atomic.Int64
	scanRowsMatched  atomic.Int64
	scanRowsGathered atomic.Int64
)

// ScanStats is a snapshot of the columnar scan and join counters.
type ScanStats struct {
	BlocksScanned int64 `json:"blocks_scanned"`
	BlocksSkipped int64 `json:"blocks_skipped"`
	RowsProbed    int64 `json:"rows_probed"`
	RowsMatched   int64 `json:"rows_matched"`
	RowsGathered  int64 `json:"rows_gathered"`
}

// SkipRate returns the fraction of visited blocks that zone maps proved
// irrelevant, in [0,1].
func (s ScanStats) SkipRate() float64 {
	total := s.BlocksScanned + s.BlocksSkipped
	if total == 0 {
		return 0
	}
	return float64(s.BlocksSkipped) / float64(total)
}

// ProbeHitRate returns the fraction of probe-side tuples whose join key
// matched at least one build entry, in [0,1].
func (s ScanStats) ProbeHitRate() float64 {
	if s.RowsProbed == 0 {
		return 0
	}
	return float64(s.RowsMatched) / float64(s.RowsProbed)
}

// ReadScanStats returns the cumulative scan and join counters.
func ReadScanStats() ScanStats {
	return ScanStats{
		BlocksScanned: scanBlocksScanned.Load(),
		BlocksSkipped: scanBlocksSkipped.Load(),
		RowsProbed:    scanRowsProbed.Load(),
		RowsMatched:   scanRowsMatched.Load(),
		RowsGathered:  scanRowsGathered.Load(),
	}
}

// ResetScanStats zeroes the scan and join counters (benchmarks and tests).
func ResetScanStats() {
	scanBlocksScanned.Store(0)
	scanBlocksSkipped.Store(0)
	scanRowsProbed.Store(0)
	scanRowsMatched.Store(0)
	scanRowsGathered.Store(0)
}

// rowSource is the head of a pipeline: a range of row ordinals that morsels
// are cut from. scanSource reads column blocks directly; sliceSource wraps
// already-materialized rows (view seeks, aggregation outputs).
type rowSource interface {
	numRows() int
	// morsel returns the qualifying rows of ordinals [lo,hi). The returned
	// slice is only valid until the worker's next morsel call (its backing
	// array is per-worker scratch), but the rows themselves are durable.
	morsel(lo, hi int, sc *scanScratch) ([]storage.Row, error)
}

type sliceSource []storage.Row

func (s sliceSource) numRows() int { return len(s) }

func (s sliceSource) morsel(lo, hi int, _ *scanScratch) ([]storage.Row, error) {
	return s[lo:hi], nil
}

// scanScratch is one worker's private scan state: the row-slab allocator
// (emitted rows are durable — slabs are never recycled), the reusable morsel
// output slice, the gather row used when a non-vectorizable predicate
// conjunct needs a materialized row, the selection-vector buffer for
// late-materialization sources, and the worker's rid pipeline state when the
// source is a ridRowSource (gather.go).
type scanScratch struct {
	alloc  rowAlloc
	rows   []storage.Row
	gather storage.Row
	rids   []int32
	rid    *ridWorker
}

// colEmitter produces the boxed value of one output column for row ordinal i.
type colEmitter func(i int) sqlvalue.Value

func nullEmitter(int) sqlvalue.Value { return sqlvalue.Null }

// makeEmitter builds the emitter reading a column's physical arrays.
func makeEmitter(v storage.ColView) colEmitter {
	if v.Generic != nil {
		g := v.Generic
		return func(i int) sqlvalue.Value { return g[i] }
	}
	nulls := v.Nulls
	switch v.Kind {
	case sqlvalue.KindInt:
		a := v.Ints
		if nulls == nil {
			return func(i int) sqlvalue.Value { return sqlvalue.NewInt(a[i]) }
		}
		return func(i int) sqlvalue.Value {
			if bitSet(nulls, i) {
				return sqlvalue.Null
			}
			return sqlvalue.NewInt(a[i])
		}
	case sqlvalue.KindDate:
		a := v.Ints
		if nulls == nil {
			return func(i int) sqlvalue.Value { return sqlvalue.NewDate(a[i]) }
		}
		return func(i int) sqlvalue.Value {
			if bitSet(nulls, i) {
				return sqlvalue.Null
			}
			return sqlvalue.NewDate(a[i])
		}
	case sqlvalue.KindBool:
		a := v.Ints
		if nulls == nil {
			return func(i int) sqlvalue.Value { return sqlvalue.NewBool(a[i] != 0) }
		}
		return func(i int) sqlvalue.Value {
			if bitSet(nulls, i) {
				return sqlvalue.Null
			}
			return sqlvalue.NewBool(a[i] != 0)
		}
	case sqlvalue.KindFloat:
		a := v.Floats
		if nulls == nil {
			return func(i int) sqlvalue.Value { return sqlvalue.NewFloat(a[i]) }
		}
		return func(i int) sqlvalue.Value {
			if bitSet(nulls, i) {
				return sqlvalue.Null
			}
			return sqlvalue.NewFloat(a[i])
		}
	case sqlvalue.KindString:
		a := v.Strs
		if nulls == nil {
			return func(i int) sqlvalue.Value { return sqlvalue.NewString(a[i]) }
		}
		return func(i int) sqlvalue.Value {
			if bitSet(nulls, i) {
				return sqlvalue.Null
			}
			return sqlvalue.NewString(a[i])
		}
	default: // KindNull: the column has only ever held NULL
		return nullEmitter
	}
}

func bitSet(bm []uint64, i int) bool {
	w := i >> 6
	return w < len(bm) && bm[w]&(1<<(uint(i)&63)) != 0
}

// scanSource streams a table or view scan straight out of column blocks:
// the fused filter runs against column arrays (vectorized conjuncts read
// typed payloads; only non-vectorizable conjuncts see a gathered row), zone
// maps skip whole blocks when the predicate cannot hold there, and only
// qualifying rows are materialized — one emitter call per output column.
type scanSource struct {
	store   *storage.ColumnStore
	cols    []storage.ColView
	colEmit []colEmitter // per storage column, for gather and default output
	emit    []colEmitter // output columns (differs after projection fusion)
	width   int
	pred    *scanPred
	skip    bool // consult zone maps (pred is safe and yields constraints)

	projected bool
}

func newScanSource(store *storage.ColumnStore, filter expr.Expr, e *Engine) *scanSource {
	ncols := store.NumCols()
	s := &scanSource{store: store, width: ncols}
	s.cols = make([]storage.ColView, ncols)
	s.colEmit = make([]colEmitter, ncols)
	for c := 0; c < ncols; c++ {
		s.cols[c] = store.Col(c)
		s.colEmit[c] = makeEmitter(s.cols[c])
	}
	s.emit = s.colEmit
	if filter != nil {
		s.pred = compileScanPred(filter, s.cols, ncols)
		s.skip = s.pred.safe && len(s.pred.zones) > 0 && !e.DisableZoneSkip
	}
	return s
}

// exprEmitter returns an emitter for a Column or Const expression over the
// scan's OUTPUT columns, or nil for any other shape.
func (s *scanSource) exprEmitter(ex expr.Expr) colEmitter {
	switch n := ex.(type) {
	case expr.Column:
		if n.Ref.Tab != 0 || n.Ref.Col < 0 || n.Ref.Col >= len(s.emit) {
			return nullEmitter
		}
		return s.emit[n.Ref.Col]
	case expr.Const:
		v := n.Val
		return func(int) sqlvalue.Value { return v }
	}
	return nil
}

// projectable reports whether every projection expression is a plain column
// reference or constant, i.e. the projection can fuse into the scan.
func projectable(exprs []expr.Expr) bool {
	for _, ex := range exprs {
		switch ex.(type) {
		case expr.Column, expr.Const:
		default:
			return false
		}
	}
	return true
}

// setProjection fuses a column/constant projection into the scan: output
// rows are emitted at projection width with no intermediate full-width row.
func (s *scanSource) setProjection(exprs []expr.Expr) {
	emit := make([]colEmitter, len(exprs))
	for j, ex := range exprs {
		emit[j] = s.exprEmitter(ex)
	}
	s.emit = emit
	s.width = len(exprs)
	s.projected = true
}

func (s *scanSource) numRows() int { return s.store.Len() }

func (s *scanSource) morsel(lo, hi int, sc *scanScratch) ([]storage.Row, error) {
	out := sc.rows[:0]
	pred := s.pred
	for i := lo; i < hi; {
		b := i / storage.BlockRows
		be := (b + 1) * storage.BlockRows
		if be > hi {
			be = hi
		}
		if s.skip && s.skipBlock(b) {
			scanBlocksSkipped.Add(1)
			i = be
			continue
		}
		scanBlocksScanned.Add(1)
		for ; i < be; i++ {
			if pred != nil {
				ok, err := pred.eval(i, s, sc)
				if err != nil {
					sc.rows = out
					return nil, err
				}
				if !ok {
					continue
				}
			}
			r := sc.alloc.row(s.width)
			for c, em := range s.emit {
				r[c] = em(i)
			}
			out = append(out, r)
		}
	}
	sc.rows = out
	return out, nil
}

// morselRids appends the ordinals of qualifying rows in [lo,hi) to out — the
// selection-vector form of morsel: the same block loop, zone-map skipping,
// and fused predicate, but nothing is materialized. Late-materialization join
// pipelines (gather.go) start here.
func (s *scanSource) morselRids(lo, hi int, sc *scanScratch, out []int32) ([]int32, error) {
	pred := s.pred
	for i := lo; i < hi; {
		b := i / storage.BlockRows
		be := (b + 1) * storage.BlockRows
		if be > hi {
			be = hi
		}
		if s.skip && s.skipBlock(b) {
			scanBlocksSkipped.Add(1)
			i = be
			continue
		}
		scanBlocksScanned.Add(1)
		for ; i < be; i++ {
			if pred != nil {
				ok, err := pred.eval(i, s, sc)
				if err != nil {
					return out, err
				}
				if !ok {
					continue
				}
			}
			out = append(out, int32(i))
		}
	}
	return out, nil
}

// skipBlock reports whether block b provably contains no qualifying row:
// some predicate conjunct constrains a column to an interval set that does
// not overlap the block's [Min,Max] zone (or the block is all-NULL on that
// column). Only consulted when every conjunct is provably error- and
// panic-free, so skipping can never suppress a runtime error the reference
// evaluator would surface.
func (s *scanSource) skipBlock(b int) bool {
	for k := range s.pred.zones {
		zc := &s.pred.zones[k]
		z := s.store.Zone(zc.col, b)
		if !z.Tracked {
			continue
		}
		if !z.HasNonNull {
			// Every value is NULL: no comparison against the column holds.
			return true
		}
		blockRange := ranges.Range{
			Lo: ranges.Bound{Set: true, Val: z.Min},
			Hi: ranges.Bound{Set: true, Val: z.Max},
		}
		overlap := false
		for _, p := range zc.set.Parts() {
			if p.Overlaps(blockRange) {
				overlap = true
				break
			}
		}
		if !overlap {
			return true
		}
	}
	return false
}

// ---------------------------------------------------------------------------
// Scan predicate compilation

// Three-valued logic results of a vectorized conjunct.
const (
	triFalse uint8 = iota
	triTrue
	triNull
)

// triFn evaluates one conjunct against row ordinal i.
type triFn func(i int) uint8

// conjunct is one top-level AND term of a scan filter. Vectorized conjuncts
// (vec) read column arrays directly; the rest fall back to the compiled
// row-expression (gen) over a gathered row.
type conjunct struct {
	vec   triFn
	gen   expr.Compiled
	inAnd bool // part of an AND: non-bool results panic like compiled And
}

// zoneConstraint is the interval set a column must intersect for any row of
// a block to qualify.
type zoneConstraint struct {
	col int
	set ranges.IntervalSet
}

type scanPred struct {
	conj  []conjunct
	zones []zoneConstraint
	safe  bool // every conjunct provably error- and panic-free
}

// eval applies the predicate to row i with the exact three-valued-logic,
// error, and panic behavior of expr.CompilePredicate over the same filter:
// conjuncts evaluate in original order, FALSE short-circuits, NULL does not.
func (p *scanPred) eval(i int, s *scanSource, sc *scanScratch) (bool, error) {
	sawNull := false
	gathered := false
	for k := range p.conj {
		cj := &p.conj[k]
		if cj.vec != nil {
			switch cj.vec(i) {
			case triFalse:
				return false, nil
			case triNull:
				sawNull = true
			}
			continue
		}
		if !gathered {
			if sc.gather == nil {
				sc.gather = make(storage.Row, len(s.colEmit))
			}
			for c, em := range s.colEmit {
				sc.gather[c] = em(i)
			}
			gathered = true
		}
		v, err := cj.gen(sc.gather)
		if err != nil {
			return false, err
		}
		if v.IsNull() {
			sawNull = true
			continue
		}
		if v.Kind() != sqlvalue.KindBool {
			if cj.inAnd {
				// The compiled And calls Bool() on every non-NULL argument;
				// reproduce its panic exactly.
				_ = v.Bool()
			}
			return false, fmt.Errorf("expr: predicate evaluated to %s", v.Kind())
		}
		if !v.Bool() {
			return false, nil
		}
	}
	if sawNull {
		return false, nil
	}
	return true, nil
}

// compileScanPred decomposes filter into top-level conjuncts, vectorizes the
// ones it can, classifies safety for zone skipping, and extracts per-column
// interval constraints.
func compileScanPred(filter expr.Expr, cols []storage.ColView, ncols int) *scanPred {
	parts := []expr.Expr{filter}
	isAnd := false
	if a, ok := filter.(expr.And); ok {
		parts = a.Args
		isAnd = true
	}
	p := &scanPred{safe: true}
	for _, part := range parts {
		cj := conjunct{inAnd: isAnd}
		if vec, ok := vecPredicate(part, cols, ncols); ok {
			cj.vec = vec
		} else {
			cj.gen = expr.Compile(part)
		}
		if !predSafe(part, cols, ncols) {
			p.safe = false
		}
		p.conj = append(p.conj, cj)
	}
	if p.safe {
		p.zones = zoneConstraints(parts, ncols)
	}
	return p
}

// ---------------------------------------------------------------------------
// Vectorized conjuncts

// Static value classes of a comparison side.
const (
	classNone uint8 = iota // not statically classifiable (or may error)
	classNum               // numeric chain: Int, Date, or Float result kind
	classStr               // string column or constant
	classNull              // constant NULL (invalid or all-NULL column)
)

// numChain is a compiled arithmetic chain with a statically known result
// kind. Chains are error- and panic-free by construction: columns are typed,
// constants numeric, and only operations that cannot fail on numeric inputs
// are admitted (division by zero yields NULL, as sqlvalue.Div does).
type numChain struct {
	kind sqlvalue.Kind // KindInt, KindDate, or KindFloat
	gi   func(i int) (int64, bool)   // non-float chains; bool = NULL
	gf   func(i int) (float64, bool) // float chains
}

func (n numChain) float() func(i int) (float64, bool) {
	if n.gf != nil {
		return n.gf
	}
	gi := n.gi
	return func(i int) (float64, bool) {
		v, null := gi(i)
		return float64(v), null
	}
}

// vecNum compiles e into a numeric chain when its result kind is static.
func vecNum(e expr.Expr, cols []storage.ColView, ncols int) (numChain, bool) {
	switch n := e.(type) {
	case expr.Const:
		switch n.Val.Kind() {
		case sqlvalue.KindInt:
			c := n.Val.Int()
			return numChain{kind: sqlvalue.KindInt, gi: func(int) (int64, bool) { return c, false }}, true
		case sqlvalue.KindDate:
			c := n.Val.DateDays()
			return numChain{kind: sqlvalue.KindDate, gi: func(int) (int64, bool) { return c, false }}, true
		case sqlvalue.KindFloat:
			c := n.Val.Float()
			return numChain{kind: sqlvalue.KindFloat, gf: func(int) (float64, bool) { return c, false }}, true
		}
		return numChain{}, false
	case expr.Column:
		if n.Ref.Tab != 0 || n.Ref.Col < 0 || n.Ref.Col >= ncols {
			return numChain{}, false // binds to NULL; handled by classNull
		}
		v := cols[n.Ref.Col]
		if v.Generic != nil {
			return numChain{}, false
		}
		nulls := v.Nulls
		switch v.Kind {
		case sqlvalue.KindInt, sqlvalue.KindDate:
			a := v.Ints
			if nulls == nil {
				return numChain{kind: v.Kind, gi: func(i int) (int64, bool) { return a[i], false }}, true
			}
			return numChain{kind: v.Kind, gi: func(i int) (int64, bool) {
				if bitSet(nulls, i) {
					return 0, true
				}
				return a[i], false
			}}, true
		case sqlvalue.KindFloat:
			a := v.Floats
			if nulls == nil {
				return numChain{kind: sqlvalue.KindFloat, gf: func(i int) (float64, bool) { return a[i], false }}, true
			}
			return numChain{kind: sqlvalue.KindFloat, gf: func(i int) (float64, bool) {
				if bitSet(nulls, i) {
					return 0, true
				}
				return a[i], false
			}}, true
		}
		return numChain{}, false
	case expr.Arith:
		l, ok := vecNum(n.L, cols, ncols)
		if !ok {
			return numChain{}, false
		}
		r, ok := vecNum(n.R, cols, ncols)
		if !ok {
			return numChain{}, false
		}
		// sqlvalue.arith: Int op Int stays integral except division; any
		// Date or Float operand promotes the whole operation to float.
		if l.kind == sqlvalue.KindInt && r.kind == sqlvalue.KindInt && n.Op != expr.Div {
			li, ri := l.gi, r.gi
			var gi func(i int) (int64, bool)
			switch n.Op {
			case expr.Add:
				gi = func(i int) (int64, bool) {
					a, an := li(i)
					if an {
						return 0, true
					}
					b, bn := ri(i)
					if bn {
						return 0, true
					}
					return a + b, false
				}
			case expr.Sub:
				gi = func(i int) (int64, bool) {
					a, an := li(i)
					if an {
						return 0, true
					}
					b, bn := ri(i)
					if bn {
						return 0, true
					}
					return a - b, false
				}
			case expr.Mul:
				gi = func(i int) (int64, bool) {
					a, an := li(i)
					if an {
						return 0, true
					}
					b, bn := ri(i)
					if bn {
						return 0, true
					}
					return a * b, false
				}
			default:
				return numChain{}, false
			}
			return numChain{kind: sqlvalue.KindInt, gi: gi}, true
		}
		lf, rf := l.float(), r.float()
		var gf func(i int) (float64, bool)
		switch n.Op {
		case expr.Add:
			gf = func(i int) (float64, bool) {
				a, an := lf(i)
				if an {
					return 0, true
				}
				b, bn := rf(i)
				if bn {
					return 0, true
				}
				return a + b, false
			}
		case expr.Sub:
			gf = func(i int) (float64, bool) {
				a, an := lf(i)
				if an {
					return 0, true
				}
				b, bn := rf(i)
				if bn {
					return 0, true
				}
				return a - b, false
			}
		case expr.Mul:
			gf = func(i int) (float64, bool) {
				a, an := lf(i)
				if an {
					return 0, true
				}
				b, bn := rf(i)
				if bn {
					return 0, true
				}
				return a * b, false
			}
		case expr.Div:
			gf = func(i int) (float64, bool) {
				a, an := lf(i)
				if an {
					return 0, true
				}
				b, bn := rf(i)
				if bn || b == 0 {
					return 0, true // division by zero yields NULL
				}
				return a / b, false
			}
		default:
			return numChain{}, false
		}
		return numChain{kind: sqlvalue.KindFloat, gf: gf}, true
	case expr.Neg:
		a, ok := vecNum(n.E, cols, ncols)
		// sqlvalue.Neg errors on DATE, so a Date chain is not negatable.
		if !ok || a.kind == sqlvalue.KindDate {
			return numChain{}, false
		}
		if a.kind == sqlvalue.KindInt {
			gi := a.gi
			return numChain{kind: sqlvalue.KindInt, gi: func(i int) (int64, bool) {
				v, null := gi(i)
				return -v, null
			}}, true
		}
		gf := a.gf
		return numChain{kind: sqlvalue.KindFloat, gf: func(i int) (float64, bool) {
			v, null := gf(i)
			return -v, null
		}}, true
	case expr.Func:
		if (n.Name != "ABS" && n.Name != "abs") || len(n.Args) != 1 {
			return numChain{}, false
		}
		a, ok := vecNum(n.Args[0], cols, ncols)
		// absValue errors on DATE.
		if !ok || a.kind == sqlvalue.KindDate {
			return numChain{}, false
		}
		if a.kind == sqlvalue.KindInt {
			gi := a.gi
			return numChain{kind: sqlvalue.KindInt, gi: func(i int) (int64, bool) {
				v, null := gi(i)
				if v < 0 {
					v = -v
				}
				return v, null
			}}, true
		}
		gf := a.gf
		return numChain{kind: sqlvalue.KindFloat, gf: func(i int) (float64, bool) {
			v, null := gf(i)
			// Match absValue: only strictly negative values are negated, so
			// ABS(-0.0) stays -0.0 and rendering is byte-identical.
			if v < 0 {
				v = -v
			}
			return v, null
		}}, true
	}
	return numChain{}, false
}

// vecStr compiles e into a string getter when it is a string column or
// constant; bool result = NULL.
func vecStr(e expr.Expr, cols []storage.ColView, ncols int) (func(i int) (string, bool), bool) {
	switch n := e.(type) {
	case expr.Const:
		if n.Val.Kind() == sqlvalue.KindString {
			s := n.Val.Str()
			return func(int) (string, bool) { return s, false }, true
		}
		return nil, false
	case expr.Column:
		if n.Ref.Tab != 0 || n.Ref.Col < 0 || n.Ref.Col >= ncols {
			return nil, false
		}
		v := cols[n.Ref.Col]
		if v.Generic != nil || v.Kind != sqlvalue.KindString {
			return nil, false
		}
		a := v.Strs
		nulls := v.Nulls
		if nulls == nil {
			return func(i int) (string, bool) { return a[i], false }, true
		}
		return func(i int) (string, bool) {
			if bitSet(nulls, i) {
				return "", true
			}
			return a[i], false
		}, true
	}
	return nil, false
}

// sideClass classifies one comparison side for vectorization.
func sideClass(e expr.Expr, cols []storage.ColView, ncols int) uint8 {
	switch n := e.(type) {
	case expr.Const:
		if n.Val.IsNull() {
			return classNull
		}
	case expr.Column:
		if n.Ref.Tab != 0 || n.Ref.Col < 0 || n.Ref.Col >= ncols {
			return classNull // binds to NULL
		}
		v := cols[n.Ref.Col]
		if v.Generic == nil && v.Kind == sqlvalue.KindNull {
			return classNull // column has only ever held NULL
		}
	}
	if _, ok := vecNum(e, cols, ncols); ok {
		return classNum
	}
	if _, ok := vecStr(e, cols, ncols); ok {
		return classStr
	}
	return classNone
}

func triOf(b bool) uint8 {
	if b {
		return triTrue
	}
	return triFalse
}

// cmpSatisfied mirrors expr's cmpSatisfies.
func cmpSatisfied(op expr.CmpOp, cmp int) bool {
	switch op {
	case expr.EQ:
		return cmp == 0
	case expr.NE:
		return cmp != 0
	case expr.LT:
		return cmp < 0
	case expr.LE:
		return cmp <= 0
	case expr.GT:
		return cmp > 0
	case expr.GE:
		return cmp >= 0
	}
	return false
}

func cmpInt(a, b int64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

func cmpFloat(a, b float64) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// vecPredicate vectorizes a conjunct when possible: comparisons over static
// numeric/string chains and IS [NOT] NULL over a column.
func vecPredicate(e expr.Expr, cols []storage.ColView, ncols int) (triFn, bool) {
	switch n := e.(type) {
	case expr.Cmp:
		return vecCmp(n, cols, ncols)
	case expr.IsNull:
		col, ok := n.E.(expr.Column)
		if !ok {
			return nil, false
		}
		negate := n.Negate
		if col.Ref.Tab != 0 || col.Ref.Col < 0 || col.Ref.Col >= ncols {
			// The reference binds this to NULL: IS NULL is constantly true.
			res := triOf(!negate)
			return func(int) uint8 { return res }, true
		}
		v := cols[col.Ref.Col]
		if negate {
			return func(i int) uint8 { return triOf(!v.IsNull(i)) }, true
		}
		return func(i int) uint8 { return triOf(v.IsNull(i)) }, true
	}
	return nil, false
}

func vecCmp(n expr.Cmp, cols []storage.ColView, ncols int) (triFn, bool) {
	op := n.Op
	lc := sideClass(n.L, cols, ncols)
	if lc == classNone {
		return nil, false
	}
	rc := sideClass(n.R, cols, ncols)
	if rc == classNone {
		return nil, false
	}
	// A NULL side, or statically incomparable kinds, make the comparison
	// constantly NULL (sqlvalue.Compare never errors).
	if lc == classNull || rc == classNull || lc != rc {
		return func(int) uint8 { return triNull }, true
	}
	if lc == classStr {
		ls, _ := vecStr(n.L, cols, ncols)
		rs, _ := vecStr(n.R, cols, ncols)
		return func(i int) uint8 {
			a, an := ls(i)
			if an {
				return triNull
			}
			b, bn := rs(i)
			if bn {
				return triNull
			}
			return triOf(cmpSatisfied(op, stringsCompare(a, b)))
		}, true
	}
	ln, _ := vecNum(n.L, cols, ncols)
	rn, _ := vecNum(n.R, cols, ncols)
	// sqlvalue.Compare compares two non-float numerics on their integral
	// payloads (avoiding float rounding on big keys); any float side makes
	// it a float comparison.
	if ln.kind != sqlvalue.KindFloat && rn.kind != sqlvalue.KindFloat {
		li, ri := ln.gi, rn.gi
		return func(i int) uint8 {
			a, an := li(i)
			if an {
				return triNull
			}
			b, bn := ri(i)
			if bn {
				return triNull
			}
			return triOf(cmpSatisfied(op, cmpInt(a, b)))
		}, true
	}
	lf, rf := ln.float(), rn.float()
	return func(i int) uint8 {
		a, an := lf(i)
		if an {
			return triNull
		}
		b, bn := rf(i)
		if bn {
			return triNull
		}
		return triOf(cmpSatisfied(op, cmpFloat(a, b)))
	}, true
}

func stringsCompare(a, b string) int {
	switch {
	case a < b:
		return -1
	case a > b:
		return 1
	}
	return 0
}

// ---------------------------------------------------------------------------
// Skip safety and zone constraints

// isLeaf reports whether e is a bare column reference or constant — shapes
// whose evaluation can never error or panic.
func isLeaf(e expr.Expr) bool {
	switch e.(type) {
	case expr.Column, expr.Const:
		return true
	}
	return false
}

// sideSafe reports whether a comparison side is provably error- and
// panic-free: a leaf (Compare never errors on any value pair) or a static
// numeric chain.
func sideSafe(e expr.Expr, cols []storage.ColView, ncols int) bool {
	if isLeaf(e) {
		return true
	}
	_, ok := vecNum(e, cols, ncols)
	return ok
}

// predSafe reports whether evaluating e can neither error nor panic and
// always yields a boolean or NULL — the precondition for zone skipping: a
// skipped block must not suppress a runtime failure the reference evaluator
// would surface, and AND/OR/NOT over e must not hit a non-bool panic.
func predSafe(e expr.Expr, cols []storage.ColView, ncols int) bool {
	switch n := e.(type) {
	case expr.Const:
		k := n.Val.Kind()
		return k == sqlvalue.KindBool || k == sqlvalue.KindNull
	case expr.Cmp:
		return sideSafe(n.L, cols, ncols) && sideSafe(n.R, cols, ncols)
	case expr.IsNull:
		return isLeaf(n.E)
	case expr.Like:
		return isLeaf(n.E) && isLeaf(n.Pattern)
	case expr.Not:
		return predSafe(n.E, cols, ncols)
	case expr.And:
		for _, a := range n.Args {
			if !predSafe(a, cols, ncols) {
				return false
			}
		}
		return true
	case expr.Or:
		for _, a := range n.Args {
			if !predSafe(a, cols, ncols) {
				return false
			}
		}
		return true
	}
	return false
}

// colCmpConst matches a conjunct of shape col⊙const (or const⊙col, flipped)
// over an in-range column.
func colCmpConst(e expr.Expr, ncols int) (int, expr.CmpOp, sqlvalue.Value, bool) {
	c, ok := e.(expr.Cmp)
	if !ok {
		return 0, 0, sqlvalue.Null, false
	}
	if col, ok := c.L.(expr.Column); ok && col.Ref.Tab == 0 && col.Ref.Col >= 0 && col.Ref.Col < ncols {
		if cst, ok := c.R.(expr.Const); ok {
			return col.Ref.Col, c.Op, cst.Val, true
		}
	}
	if col, ok := c.R.(expr.Column); ok && col.Ref.Tab == 0 && col.Ref.Col >= 0 && col.Ref.Col < ncols {
		if cst, ok := c.L.(expr.Const); ok {
			return col.Ref.Col, c.Op.Flip(), cst.Val, true
		}
	}
	return 0, 0, sqlvalue.Null, false
}

// conjunctConstraint extracts the interval set a single conjunct imposes on
// one column: col⊙const directly, or an OR of col⊙const terms over the same
// column (IN-list shape) as the union of their ranges. NE contributes
// nothing (its complement is not an interval).
func conjunctConstraint(e expr.Expr, ncols int) (int, ranges.IntervalSet, bool) {
	if col, op, val, ok := colCmpConst(e, ncols); ok && op != expr.NE {
		if r, applied := ranges.Universal().Apply(op, val); applied {
			return col, ranges.NewIntervalSet(r), true
		}
		return 0, ranges.IntervalSet{}, false
	}
	or, ok := e.(expr.Or)
	if !ok {
		return 0, ranges.IntervalSet{}, false
	}
	colSeen := -1
	set := ranges.NewIntervalSet()
	for _, arg := range or.Args {
		col, op, val, ok := colCmpConst(arg, ncols)
		if !ok || op == expr.NE {
			return 0, ranges.IntervalSet{}, false
		}
		if colSeen < 0 {
			colSeen = col
		} else if col != colSeen {
			return 0, ranges.IntervalSet{}, false
		}
		r, applied := ranges.Universal().Apply(op, val)
		if !applied {
			return 0, ranges.IntervalSet{}, false
		}
		set = set.Add(r)
	}
	if colSeen < 0 {
		return 0, ranges.IntervalSet{}, false
	}
	return colSeen, set, true
}

// zoneConstraints intersects the constraints all conjuncts impose, per
// column, ordered by column for determinism.
func zoneConstraints(parts []expr.Expr, ncols int) []zoneConstraint {
	perCol := map[int]ranges.IntervalSet{}
	var order []int
	for _, part := range parts {
		col, set, ok := conjunctConstraint(part, ncols)
		if !ok {
			continue
		}
		if prev, seen := perCol[col]; seen {
			perCol[col] = prev.IntersectSet(set)
		} else {
			perCol[col] = set
			order = append(order, col)
		}
	}
	out := make([]zoneConstraint, 0, len(order))
	for _, col := range order {
		out = append(out, zoneConstraint{col: col, set: perCol[col]})
	}
	return out
}
