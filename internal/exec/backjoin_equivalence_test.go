package exec_test

import (
	"testing"

	"matview/internal/core"
	"matview/internal/exec"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/tpch"
)

// TestBackjoinSubstituteEquivalence executes backjoin rewrites (§7) against
// generated data and checks row-for-row agreement with direct evaluation.
func TestBackjoinSubstituteEquivalence(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 19)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := core.NewMatcher(cat, core.DefaultOptions())
	tr := func(n string) spjg.TableRef { return spjg.TableRef{Table: cat.Table(n)} }

	type scenario struct {
		name  string
		view  *spjg.Query
		query *spjg.Query
	}
	scenarios := []scenario{
		{
			name: "spj output recovery",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("orders")},
				Where:  expr.NewCmp(expr.GE, expr.Col(0, tpch.OTotalprice), expr.CInt(100000)),
				Outputs: []spjg.OutputColumn{
					{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
					{Name: "o_totalprice", Expr: expr.Col(0, tpch.OTotalprice)},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("orders")},
				Where:  expr.NewCmp(expr.GE, expr.Col(0, tpch.OTotalprice), expr.CInt(200000)),
				Outputs: []spjg.OutputColumn{
					{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
					{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)}, // missing from view
				},
			},
		},
		{
			name: "compensating predicate on recovered column",
			view: &spjg.Query{
				Tables: []spjg.TableRef{tr("orders")},
				Outputs: []spjg.OutputColumn{
					{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
				},
			},
			query: &spjg.Query{
				Tables: []spjg.TableRef{tr("orders")},
				Where:  expr.NewCmp(expr.LE, expr.Col(0, tpch.OCustkey), expr.CInt(50)),
				Outputs: []spjg.OutputColumn{
					{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
					{Name: "o_totalprice", Expr: expr.Col(0, tpch.OTotalprice)},
				},
			},
		},
		{
			name: "aggregation grouped on key with backjoined grouping column",
			view: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.LOrderkey), expr.Col(0, tpch.LLinenumber)},
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(0, tpch.LOrderkey)},
					{Name: "l_linenumber", Expr: expr.Col(0, tpch.LLinenumber)},
					{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
					{Name: "qty", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.LQuantity)}},
				},
			},
			query: &spjg.Query{
				Tables:  []spjg.TableRef{tr("lineitem")},
				GroupBy: []expr.Expr{expr.Col(0, tpch.LOrderkey), expr.Col(0, tpch.LLinenumber), expr.Col(0, tpch.LPartkey)},
				Outputs: []spjg.OutputColumn{
					{Name: "l_orderkey", Expr: expr.Col(0, tpch.LOrderkey)},
					{Name: "l_linenumber", Expr: expr.Col(0, tpch.LLinenumber)},
					{Name: "l_partkey", Expr: expr.Col(0, tpch.LPartkey)},
					{Name: "qty", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.LQuantity)}},
				},
			},
		},
	}
	for i, sc := range scenarios {
		sc := sc
		t.Run(sc.name, func(t *testing.T) {
			if err := sc.query.Validate(); err != nil {
				t.Fatal(err)
			}
			name := "bj_mv"
			v, err := m.NewView(i, name, sc.view)
			if err != nil {
				t.Fatal(err)
			}
			if _, err := exec.Materialize(db, name, sc.view); err != nil {
				t.Fatal(err)
			}
			sub := m.Match(sc.query, v)
			if sub == nil {
				t.Fatal("matcher rejected")
			}
			if len(sub.Backjoins) == 0 {
				t.Fatalf("expected a backjoin: %s", sub)
			}
			got, err := exec.RunSubstitute(db, sub)
			if err != nil {
				t.Fatalf("%v\nsubstitute: %s", err, sub)
			}
			want, err := exec.RunQuery(db, sc.query)
			if err != nil {
				t.Fatal(err)
			}
			if len(want) == 0 {
				t.Fatal("query returned no rows; vacuous")
			}
			if !exec.SameRows(got, want) {
				t.Fatalf("backjoin substitute differs (%d vs %d rows)\nsubstitute: %s",
					len(got), len(want), sub)
			}
		})
	}
}
