package exec

import (
	"fmt"
	"strings"

	"matview/internal/expr"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// RunReference executes a plan with the original row-at-a-time evaluator:
// every operator fully materializes its output, expressions are interpreted
// through a per-row Binding closure, and execution is single-threaded. It is
// kept as the semantic baseline the batched engine is checked against
// (equivalence and fuzz suites run every plan through both) and as the
// "before" side of the BenchmarkExec* comparisons. Scans materialize rows
// out of the column store via Rows()/RowAt(), paying the row-at-a-time
// boxing cost the columnar engine avoids.
func RunReference(db storage.Reader, n Node) ([]storage.Row, error) {
	switch t := n.(type) {
	case *TableScan:
		return refTableScan(db, t)
	case *ViewScan:
		return refViewScan(db, t)
	case *HashJoin:
		return refHashJoin(db, t)
	case *NestedLoopJoin:
		return refNestedLoopJoin(db, t)
	case *Filter:
		return refFilter(db, t)
	case *Project:
		return refProject(db, t)
	case *HashAgg:
		return refHashAgg(db, t)
	default:
		return nil, fmt.Errorf("exec: reference evaluator cannot run %T", n)
	}
}

// bindRow adapts a row to the expression interpreter's Binding.
func bindRow(r storage.Row) expr.Binding {
	return func(c expr.ColRef) sqlvalue.Value {
		if c.Tab != 0 || c.Col < 0 || c.Col >= len(r) {
			return sqlvalue.Null
		}
		return r[c.Col]
	}
}

func refTableScan(db storage.Reader, s *TableScan) ([]storage.Row, error) {
	t := db.TableData(s.Table)
	if t == nil {
		return nil, fmt.Errorf("exec: unknown table %q", s.Table)
	}
	if s.Filter == nil {
		return t.Rows(), nil
	}
	var out []storage.Row
	for _, r := range t.Rows() {
		ok, err := expr.EvalPredicate(s.Filter, bindRow(r))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func refViewScan(db storage.Reader, s *ViewScan) ([]storage.Row, error) {
	v := db.ViewData(s.View)
	if v == nil {
		return nil, fmt.Errorf("exec: view %q not materialized", s.View)
	}
	emit := func(rows []storage.Row) ([]storage.Row, error) {
		if s.Filter == nil {
			return rows, nil
		}
		var out []storage.Row
		for _, r := range rows {
			ok, err := expr.EvalPredicate(s.Filter, bindRow(r))
			if err != nil {
				return nil, err
			}
			if ok {
				out = append(out, r)
			}
		}
		return out, nil
	}
	if len(s.EqCols) == 0 {
		return emit(v.Rows())
	}
	st := v.Store()
	if idx := v.LookupIndex(s.EqCols); idx != nil {
		var rows []storage.Row
		for _, ord := range idx.Probe(s.EqVals) {
			rows = append(rows, st.RowAt(ord))
		}
		return emit(rows)
	}
	// No index built: evaluate the equalities as a scan predicate.
	var rows []storage.Row
	for _, r := range v.Rows() {
		match := true
		for i, c := range s.EqCols {
			if !sqlvalue.Identical(r[c], s.EqVals[i]) {
				match = false
				break
			}
		}
		if match {
			rows = append(rows, r)
		}
	}
	return emit(rows)
}

func refHashJoin(db storage.Reader, j *HashJoin) ([]storage.Row, error) {
	lrows, err := RunReference(db, j.L)
	if err != nil {
		return nil, err
	}
	rrows, err := RunReference(db, j.R)
	if err != nil {
		return nil, err
	}
	key := func(r storage.Row, cols []int) (string, bool) {
		var sb strings.Builder
		for _, c := range cols {
			if r[c].IsNull() {
				return "", false
			}
			sb.WriteString(r[c].Key())
			sb.WriteByte('\x1f')
		}
		return sb.String(), true
	}
	ht := make(map[string][]storage.Row, len(lrows))
	for _, lr := range lrows {
		if k, ok := key(lr, j.LCols); ok {
			ht[k] = append(ht[k], lr)
		}
	}
	var out []storage.Row
	for _, rr := range rrows {
		k, ok := key(rr, j.RCols)
		if !ok {
			continue
		}
		for _, lr := range ht[k] {
			joined := make(storage.Row, 0, len(lr)+len(rr))
			joined = append(joined, lr...)
			joined = append(joined, rr...)
			if j.Residual != nil {
				pass, err := expr.EvalPredicate(j.Residual, bindRow(joined))
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	return out, nil
}

func refNestedLoopJoin(db storage.Reader, j *NestedLoopJoin) ([]storage.Row, error) {
	lrows, err := RunReference(db, j.L)
	if err != nil {
		return nil, err
	}
	rrows, err := RunReference(db, j.R)
	if err != nil {
		return nil, err
	}
	var out []storage.Row
	for _, lr := range lrows {
		for _, rr := range rrows {
			joined := make(storage.Row, 0, len(lr)+len(rr))
			joined = append(joined, lr...)
			joined = append(joined, rr...)
			if j.Pred != nil {
				pass, err := expr.EvalPredicate(j.Pred, bindRow(joined))
				if err != nil {
					return nil, err
				}
				if !pass {
					continue
				}
			}
			out = append(out, joined)
		}
	}
	return out, nil
}

func refFilter(db storage.Reader, f *Filter) ([]storage.Row, error) {
	rows, err := RunReference(db, f.In)
	if err != nil {
		return nil, err
	}
	var out []storage.Row
	for _, r := range rows {
		ok, err := expr.EvalPredicate(f.Pred, bindRow(r))
		if err != nil {
			return nil, err
		}
		if ok {
			out = append(out, r)
		}
	}
	return out, nil
}

func refProject(db storage.Reader, p *Project) ([]storage.Row, error) {
	rows, err := RunReference(db, p.In)
	if err != nil {
		return nil, err
	}
	out := make([]storage.Row, len(rows))
	for i, r := range rows {
		bind := bindRow(r)
		nr := make(storage.Row, len(p.Exprs))
		for c, e := range p.Exprs {
			v, err := expr.Eval(e, bind)
			if err != nil {
				return nil, err
			}
			nr[c] = v
		}
		out[i] = nr
	}
	return out, nil
}

func refHashAgg(db storage.Reader, a *HashAgg) ([]storage.Row, error) {
	rows, err := RunReference(db, a.In)
	if err != nil {
		return nil, err
	}
	type group struct {
		keys storage.Row
		num  []aggState
		den  []aggState
	}
	groups := map[string]*group{}
	var order []string
	for _, r := range rows {
		bind := bindRow(r)
		keys := make(storage.Row, len(a.GroupBy))
		var kb strings.Builder
		for i, g := range a.GroupBy {
			v, err := expr.Eval(g, bind)
			if err != nil {
				return nil, err
			}
			keys[i] = v
			kb.WriteString(v.Key())
			kb.WriteByte('\x1f')
		}
		k := kb.String()
		grp, ok := groups[k]
		if !ok {
			grp = &group{keys: keys, num: make([]aggState, len(a.Aggs)), den: make([]aggState, len(a.Aggs))}
			groups[k] = grp
			order = append(order, k)
		}
		for i, spec := range a.Aggs {
			if err := grp.num[i].add(spec.Num.Kind, spec.Num.Arg, bind); err != nil {
				return nil, err
			}
			if spec.Den != nil {
				if err := grp.den[i].add(spec.Den.Kind, spec.Den.Arg, bind); err != nil {
					return nil, err
				}
			}
		}
	}
	if len(a.GroupBy) == 0 && len(groups) == 0 {
		return []storage.Row{scalarEmptyAggRow(a.Aggs)}, nil
	}
	result := make([]storage.Row, 0, len(groups))
	for _, k := range order {
		grp := groups[k]
		row, err := finishAggRow(grp.keys, grp.num, grp.den, a.Aggs)
		if err != nil {
			return nil, err
		}
		result = append(result, row)
	}
	return result, nil
}

// scalarEmptyAggRow is the one output row of a scalar aggregation over empty
// input: COUNT = 0, SUM/AVG = NULL, and any rollup quotient (Den) = NULL.
func scalarEmptyAggRow(aggs []AggSpec) storage.Row {
	out := make(storage.Row, len(aggs))
	for i, spec := range aggs {
		st := aggState{sum: sqlvalue.Null}
		out[i] = st.result(spec.Num.Kind)
		if spec.Den != nil {
			out[i] = sqlvalue.Null
		}
	}
	return out
}

// finishAggRow renders one group: keys followed by each aggregate, applying
// the Num/Den quotient for AVG rollups (§3.3).
func finishAggRow(keys storage.Row, num, den []aggState, aggs []AggSpec) (storage.Row, error) {
	row := make(storage.Row, 0, len(keys)+len(aggs))
	row = append(row, keys...)
	for i, spec := range aggs {
		v := num[i].result(spec.Num.Kind)
		if spec.Den != nil {
			d := den[i].result(spec.Den.Kind)
			if v.IsNull() || d.IsNull() {
				v = sqlvalue.Null
			} else {
				q, err := sqlvalue.Div(v, d)
				if err != nil {
					return nil, err
				}
				v = q
			}
		}
		row = append(row, v)
	}
	return row, nil
}
