package exec

import (
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// Engine executes plan trees batch-at-a-time with morsel-driven parallelism.
//
// A plan is decomposed into pipelines at its breakers (hash-join builds and
// hash aggregation). Each pipeline streams fixed-size batches of rows from a
// row source through a chain of compiled operator stages — filter, project,
// hash-join probe, nested-loop — into a sink. Table and view scans are
// columnar sources: they read typed column blocks directly, evaluate fused
// filter conjuncts against column arrays, consult per-block zone maps to
// skip blocks the predicate cannot match, and materialize only qualifying
// rows (see colscan.go). The source range is split into morsels (one batch
// each) claimed by workers off a shared atomic counter; every worker owns a
// private stage chain (scratch batches, row slabs, partial aggregation
// state), so the hot loop is synchronization-free. Shared read-only state —
// compiled expressions, finished join build tables, the inner relation of a
// nested-loop join — is built once and read by all workers.
//
// Output is deterministic and identical to RunReference for every plan:
// collected rows are ordered by (morsel, position), hash-join match lists are
// kept in build-input order, and merged aggregation groups are emitted in
// global first-seen order.
type Engine struct {
	// Workers caps the number of goroutines per pipeline. 0 (or negative)
	// selects GOMAXPROCS. Small inputs use fewer workers — never more than
	// one per morsel — and a single-worker pipeline runs inline without
	// spawning goroutines, which keeps tiny maintainer delta queries cheap.
	Workers int
	// BatchSize is the number of rows per batch/morsel (default 1024,
	// matching storage.BlockRows so morsels align with zone-map blocks).
	BatchSize int
	// DisableZoneSkip turns off zone-map block skipping (scans read every
	// block). Used by tests to compare skipping against exhaustive scans.
	DisableZoneSkip bool
	// DisableLateMat turns off late-materialization join pipelines (joins
	// materialize full rows at the scan, the pre-rid path). Used by tests to
	// compare the two join paths.
	DisableLateMat bool
	// DisableTypedKeys forces rid joins onto the boxed sqlvalue.AppendKey
	// codec even when typed fast paths apply. Used by equivalence tests to
	// exercise the fallback against the typed paths.
	DisableTypedKeys bool
}

// DefaultEngine is the engine behind Node.Run.
var DefaultEngine = &Engine{}

const defaultBatchSize = 1024

func (e *Engine) workers() int {
	if e.Workers > 0 {
		return e.Workers
	}
	return runtime.GOMAXPROCS(0)
}

func (e *Engine) batchSize() int {
	if e.BatchSize > 0 {
		return e.BatchSize
	}
	return defaultBatchSize
}

// Run executes the plan and returns its full output. The returned rows are
// freshly materialized — never aliases of storage-owned memory — so results
// remain valid after the database read lock is released.
func (e *Engine) Run(db storage.Reader, plan Node) ([]storage.Row, error) {
	return e.materialize(db, plan)
}

// materialize fully evaluates a subtree, used at the plan root and at
// pipeline breakers.
func (e *Engine) materialize(db storage.Reader, n Node) ([]storage.Row, error) {
	if a, ok := n.(*HashAgg); ok {
		return e.runAgg(db, a)
	}
	src, specs, err := e.stream(db, n)
	if err != nil {
		return nil, err
	}
	var col *collector
	if _, err := e.runPipeline(src, specs, func(nm int) morselSink {
		if col == nil {
			col = &collector{buckets: make([][]storage.Row, nm)}
		}
		return &collectorSink{c: col}
	}); err != nil {
		return nil, err
	}
	total := 0
	for _, b := range col.buckets {
		total += len(b)
	}
	out := make([]storage.Row, 0, total)
	for _, b := range col.buckets {
		out = append(out, b...)
	}
	return out, nil
}

// stream decomposes a subtree into the current pipeline: a row source and
// the ordered stage specs to stream it through. Pipeline breakers below n
// (join builds, aggregations, nested-loop inner sides) are fully executed
// here, before the caller starts the pipeline. Scan filters fuse into the
// columnar source, and a Project of plain columns/constants over a bare scan
// fuses into the scan's output emitters.
func (e *Engine) stream(db storage.Reader, n Node) (rowSource, []stageSpec, error) {
	switch t := n.(type) {
	case *TableScan:
		tb := db.TableData(t.Table)
		if tb == nil {
			return nil, nil, fmt.Errorf("exec: unknown table %q", t.Table)
		}
		return newScanSource(tb.Store(), t.Filter, e), nil, nil
	case *ViewScan:
		v := db.ViewData(t.View)
		if v == nil {
			return nil, nil, fmt.Errorf("exec: view %q not materialized", t.View)
		}
		if len(t.EqCols) > 0 {
			rows := seekView(v, t.EqCols, t.EqVals)
			var specs []stageSpec
			if t.Filter != nil {
				specs = append(specs, &filterSpec{pred: expr.CompilePredicate(t.Filter)})
			}
			return sliceSource(rows), specs, nil
		}
		return newScanSource(v.Store(), t.Filter, e), nil, nil
	case *Filter:
		src, specs, err := e.stream(db, t.In)
		if err != nil {
			return nil, nil, err
		}
		if rs, ok := src.(*ridRowSource); ok && len(specs) == 0 && !rs.projected {
			rs.addFilter(t.Pred)
			return rs, nil, nil
		}
		return src, append(specs, &filterSpec{pred: expr.CompilePredicate(t.Pred)}), nil
	case *Project:
		src, specs, err := e.stream(db, t.In)
		if err != nil {
			return nil, nil, err
		}
		if ss, ok := src.(*scanSource); ok && len(specs) == 0 && !ss.projected && projectable(t.Exprs) {
			ss.setProjection(t.Exprs)
			return ss, nil, nil
		}
		if rs, ok := src.(*ridRowSource); ok && len(specs) == 0 && !rs.projected {
			if projectable(t.Exprs) {
				rs.setProjection(t.Exprs)
				return rs, nil, nil
			}
			// Non-trivial projection: still narrow the gather to the columns
			// the projection actually reads before the row stage runs.
			rs.narrowTo(t.Exprs)
		}
		return src, append(specs, &projectSpec{exprs: compileAll(t.Exprs)}), nil
	case *HashJoin:
		if !e.DisableLateMat {
			src, layout, stages, ok, err := e.streamRids(db, t)
			if err != nil {
				return nil, nil, err
			}
			if ok {
				return &ridRowSource{e: e, src: src, layout: layout, stages: stages}, nil, nil
			}
		}
		build, err := e.buildJoin(db, t)
		if err != nil {
			return nil, nil, err
		}
		src, specs, err := e.stream(db, t.R)
		if err != nil {
			return nil, nil, err
		}
		spec := &probeSpec{build: build, cols: t.RCols, batch: e.batchSize()}
		if t.Residual != nil {
			spec.residual = expr.CompilePredicate(t.Residual)
		}
		return src, append(specs, spec), nil
	case *NestedLoopJoin:
		// The inner (right) relation is materialized once, in order, and
		// shared read-only by all workers streaming the outer side.
		inner, err := e.materialize(db, t.R)
		if err != nil {
			return nil, nil, err
		}
		src, specs, err := e.stream(db, t.L)
		if err != nil {
			return nil, nil, err
		}
		spec := &nestedLoopSpec{inner: inner, batch: e.batchSize()}
		if t.Pred != nil {
			spec.pred = expr.CompilePredicate(t.Pred)
		}
		return src, append(specs, spec), nil
	case *HashAgg:
		rows, err := e.runAgg(db, t)
		if err != nil {
			return nil, nil, err
		}
		return sliceSource(rows), nil, nil
	default:
		return nil, nil, fmt.Errorf("exec: engine cannot execute %T", n)
	}
}

func compileAll(es []expr.Expr) []expr.Compiled {
	out := make([]expr.Compiled, len(es))
	for i, ex := range es {
		out[i] = expr.Compile(ex)
	}
	return out
}

// seekView resolves a point lookup on a view: via a secondary index when one
// exists, otherwise by scanning with key equality. Matching rows are
// materialized fresh from the column store — never aliases of view storage —
// so results stay stable if the view is maintained after the lookup.
func seekView(v *storage.ViewData, eqCols []int, eqVals []sqlvalue.Value) []storage.Row {
	st := v.Store()
	if idx := v.LookupIndex(eqCols); idx != nil {
		var rows []storage.Row
		for _, ord := range idx.Probe(eqVals) {
			rows = append(rows, st.RowAt(ord))
		}
		return rows
	}
	var rows []storage.Row
	n := st.Len()
	for i := 0; i < n; i++ {
		match := true
		for k, c := range eqCols {
			if !sqlvalue.Identical(st.Value(i, c), eqVals[k]) {
				match = false
				break
			}
		}
		if match {
			rows = append(rows, st.RowAt(i))
		}
	}
	return rows
}

// ---------------------------------------------------------------------------
// Pipeline machinery

// pusher consumes one batch of rows. The input slice (and its backing array)
// is only valid during the call: downstream stages must copy row headers
// they retain. The rows themselves are immutable.
type pusher interface {
	push(in []storage.Row) error
}

// morselSink terminates a worker's stage chain. begin is called before each
// morsel with the morsel's global sequence number, which sinks use to keep
// output deterministic (collector buckets, first-seen ordinals).
type morselSink interface {
	pusher
	begin(seq int)
}

// stageSpec holds the shared, read-only state of one operator (compiled
// expressions, build tables) and makes per-worker stage instances that own
// all mutable scratch.
type stageSpec interface {
	make(next pusher) pusher
}

// forEachMorsel distributes morsel sequence numbers [0, nm) across w
// workers, calling body(worker, seq) once per morsel. A single worker runs
// inline without goroutines. Worker panics are re-raised on the calling
// goroutine; the first error aborts remaining morsels.
func forEachMorsel(nm, w int, body func(wi, seq int) error) error {
	if w == 1 {
		for seq := 0; seq < nm; seq++ {
			if err := body(0, seq); err != nil {
				return err
			}
		}
		return nil
	}
	var (
		next  atomic.Int64
		abort atomic.Bool
		mu    sync.Mutex
		first error
		pval  any
		wg    sync.WaitGroup
	)
	fail := func(err error, p any) {
		mu.Lock()
		if first == nil && pval == nil {
			first, pval = err, p
		}
		mu.Unlock()
		abort.Store(true)
	}
	for wi := 0; wi < w; wi++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			defer func() {
				if p := recover(); p != nil {
					fail(nil, p)
				}
			}()
			for !abort.Load() {
				seq := int(next.Add(1) - 1)
				if seq >= nm {
					return
				}
				if err := body(wi, seq); err != nil {
					fail(err, nil)
					return
				}
			}
		}()
	}
	wg.Wait()
	if pval != nil {
		panic(pval)
	}
	return first
}

// runPipeline streams src through the stage specs: one sink and one stage
// chain per worker, morsels claimed off a shared counter. mkSink is called
// serially (before workers start), once per worker, with the morsel count.
func (e *Engine) runPipeline(src rowSource, specs []stageSpec, mkSink func(numMorsels int) morselSink) ([]morselSink, error) {
	bs := e.batchSize()
	n := src.numRows()
	nm := (n + bs - 1) / bs
	w := e.workers()
	if w > nm {
		w = nm
	}
	if w < 1 {
		w = 1
	}
	// Resolve the rid source's gather plan before workers fan out: the lazy
	// default in gatherSpec() must not race across first morsels.
	if rs, ok := src.(*ridRowSource); ok {
		rs.gatherSpec()
	}
	sinks := make([]morselSink, w)
	chains := make([]pusher, w)
	scratch := make([]scanScratch, w)
	for i := range sinks {
		sinks[i] = mkSink(nm)
		var p pusher = sinks[i]
		for s := len(specs) - 1; s >= 0; s-- {
			p = specs[s].make(p)
		}
		chains[i] = p
	}
	err := forEachMorsel(nm, w, func(wi, seq int) error {
		lo := seq * bs
		hi := min(lo+bs, n)
		sinks[wi].begin(seq)
		rows, err := src.morsel(lo, hi, &scratch[wi])
		if err != nil {
			return err
		}
		if len(rows) == 0 {
			return nil
		}
		return chains[wi].push(rows)
	})
	// Return rid-pipeline scratch to the pool: no worker goroutines remain.
	for i := range scratch {
		if scratch[i].rid != nil {
			scratch[i].rid.release()
		}
	}
	if err != nil {
		return nil, err
	}
	return sinks, nil
}

// rowAlloc hands out output rows carved from chunked value slabs, so an
// operator emitting N rows performs O(N·width/slab) allocations instead of
// N. Slabs are never recycled: emitted rows stay valid forever.
type rowAlloc struct {
	buf []sqlvalue.Value
}

const rowAllocSlab = 4096

func (a *rowAlloc) row(w int) storage.Row {
	if len(a.buf) < w {
		n := rowAllocSlab
		if n < w {
			n = w
		}
		a.buf = make([]sqlvalue.Value, n)
	}
	r := a.buf[:w:w]
	a.buf = a.buf[w:]
	return storage.Row(r)
}

// appendRowKey appends the composite hash key of the given columns, or
// reports false if any is NULL (NULL join keys never match). The encoding —
// Value.Key bytes joined by 0x1f — matches the reference evaluator's.
func appendRowKey(dst []byte, r storage.Row, cols []int) ([]byte, bool) {
	for _, c := range cols {
		if r[c].IsNull() {
			return dst, false
		}
		dst = r[c].AppendKey(dst)
		dst = append(dst, '\x1f')
	}
	return dst, true
}

// ---------------------------------------------------------------------------
// Stages

type filterSpec struct {
	pred expr.CompiledPredicate
}

func (s *filterSpec) make(next pusher) pusher {
	return &filterStage{pred: s.pred, next: next}
}

type filterStage struct {
	pred    expr.CompiledPredicate
	next    pusher
	scratch []storage.Row
}

func (f *filterStage) push(in []storage.Row) error {
	out := f.scratch[:0]
	for _, r := range in {
		ok, err := f.pred(r)
		if err != nil {
			return err
		}
		if ok {
			out = append(out, r)
		}
	}
	f.scratch = out
	if len(out) == 0 {
		return nil
	}
	return f.next.push(out)
}

type projectSpec struct {
	exprs []expr.Compiled
}

func (s *projectSpec) make(next pusher) pusher {
	return &projectStage{exprs: s.exprs, next: next}
}

type projectStage struct {
	exprs   []expr.Compiled
	next    pusher
	alloc   rowAlloc
	scratch []storage.Row
}

func (p *projectStage) push(in []storage.Row) error {
	out := p.scratch[:0]
	for _, r := range in {
		nr := p.alloc.row(len(p.exprs))
		for c, ex := range p.exprs {
			v, err := ex(r)
			if err != nil {
				return err
			}
			nr[c] = v
		}
		out = append(out, nr)
	}
	p.scratch = out
	if len(out) == 0 {
		return nil
	}
	return p.next.push(out)
}

// joinBuild is a finished, immutable hash-join build table shared by all
// probe workers: key → left rows in build-input order.
type joinBuild struct {
	idx   map[string]int32
	lists [][]storage.Row
}

type probeSpec struct {
	build    *joinBuild
	cols     []int // key columns in the probe row
	residual expr.CompiledPredicate
	batch    int
}

func (s *probeSpec) make(next pusher) pusher {
	return &probeStage{spec: s, next: next}
}

type probeStage struct {
	spec    *probeSpec
	next    pusher
	alloc   rowAlloc
	keyBuf  []byte
	scratch []storage.Row
}

func (p *probeStage) push(in []storage.Row) error {
	s := p.spec
	out := p.scratch[:0]
	defer func() { p.scratch = out[:0] }()
	for _, rr := range in {
		key, ok := appendRowKey(p.keyBuf[:0], rr, s.cols)
		p.keyBuf = key[:0]
		if !ok {
			continue
		}
		li, ok := s.build.idx[string(key)]
		if !ok {
			continue
		}
		for _, lr := range s.build.lists[li] {
			joined := p.alloc.row(len(lr) + len(rr))
			copy(joined, lr)
			copy(joined[len(lr):], rr)
			if s.residual != nil {
				pass, err := s.residual(joined)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
			}
			out = append(out, joined)
			if len(out) >= s.batch {
				if err := p.next.push(out); err != nil {
					return err
				}
				out = out[:0]
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return p.next.push(out)
}

type nestedLoopSpec struct {
	inner []storage.Row
	pred  expr.CompiledPredicate
	batch int
}

func (s *nestedLoopSpec) make(next pusher) pusher {
	return &nestedLoopStage{spec: s, next: next}
}

type nestedLoopStage struct {
	spec    *nestedLoopSpec
	next    pusher
	alloc   rowAlloc
	scratch []storage.Row
}

func (n *nestedLoopStage) push(in []storage.Row) error {
	s := n.spec
	out := n.scratch[:0]
	defer func() { n.scratch = out[:0] }()
	for _, lr := range in {
		for _, rr := range s.inner {
			joined := n.alloc.row(len(lr) + len(rr))
			copy(joined, lr)
			copy(joined[len(lr):], rr)
			if s.pred != nil {
				pass, err := s.pred(joined)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
			}
			out = append(out, joined)
			if len(out) >= s.batch {
				if err := n.next.push(out); err != nil {
					return err
				}
				out = out[:0]
			}
		}
	}
	if len(out) == 0 {
		return nil
	}
	return n.next.push(out)
}

// ---------------------------------------------------------------------------
// Sinks

// collector gathers pipeline output rows bucketed by morsel sequence number,
// so concatenating buckets reproduces the serial (reference) output order.
// Each bucket is written by exactly the worker that owns the morsel.
type collector struct {
	buckets [][]storage.Row
}

type collectorSink struct {
	c   *collector
	cur int
}

func (s *collectorSink) begin(seq int) { s.cur = seq }

func (s *collectorSink) push(in []storage.Row) error {
	s.c.buckets[s.cur] = append(s.c.buckets[s.cur], in...)
	return nil
}

// ordinal builds a global row ordinal from a morsel sequence number and a
// within-morsel counter. Morsels are batch-sized at the source, so counters
// stay far below 2³² except under extreme join fan-out; ordering only
// degrades (never corrupts) in that case.
func ordinal(seq int, ctr int64) int64 { return int64(seq)<<32 | ctr }

// buildSink accumulates one worker's shard of a hash-join build table,
// tagging every entry with its global ordinal so the merged per-key lists
// can be restored to build-input order.
type buildSink struct {
	cols    []int
	idx     map[string]int32
	lists   [][]buildEntry
	keyBuf  []byte
	ordBase int64
	ctr     int64
}

type buildEntry struct {
	row storage.Row
	ord int64
}

func (b *buildSink) begin(seq int) {
	b.ordBase = ordinal(seq, 0)
	b.ctr = 0
}

func (b *buildSink) push(in []storage.Row) error {
	for _, r := range in {
		ord := b.ordBase | b.ctr
		b.ctr++
		key, ok := appendRowKey(b.keyBuf[:0], r, b.cols)
		b.keyBuf = key[:0]
		if !ok {
			continue
		}
		if li, ok := b.idx[string(key)]; ok {
			b.lists[li] = append(b.lists[li], buildEntry{r, ord})
		} else {
			b.idx[string(key)] = int32(len(b.lists))
			b.lists = append(b.lists, []buildEntry{{r, ord}})
		}
	}
	return nil
}

// buildJoin executes the build side of a hash join as its own pipeline and
// merges the per-worker shards into one immutable table.
func (e *Engine) buildJoin(db storage.Reader, j *HashJoin) (*joinBuild, error) {
	src, specs, err := e.stream(db, j.L)
	if err != nil {
		return nil, err
	}
	sinks, err := e.runPipeline(src, specs, func(int) morselSink {
		return &buildSink{cols: j.LCols, idx: make(map[string]int32)}
	})
	if err != nil {
		return nil, err
	}
	if len(sinks) == 1 {
		// Single shard: entries are already in ordinal order.
		b := sinks[0].(*buildSink)
		out := &joinBuild{idx: b.idx, lists: make([][]storage.Row, len(b.lists))}
		for i, es := range b.lists {
			rows := make([]storage.Row, len(es))
			for k, en := range es {
				rows[k] = en.row
			}
			out.lists[i] = rows
		}
		return out, nil
	}
	idx := make(map[string]int32)
	var merged [][]buildEntry
	for _, s := range sinks {
		b := s.(*buildSink)
		for k, li := range b.idx {
			if gi, ok := idx[k]; ok {
				merged[gi] = append(merged[gi], b.lists[li]...)
			} else {
				idx[k] = int32(len(merged))
				merged = append(merged, b.lists[li])
			}
		}
	}
	out := &joinBuild{idx: idx, lists: make([][]storage.Row, len(merged))}
	for i, es := range merged {
		sort.Slice(es, func(a, b int) bool { return es[a].ord < es[b].ord })
		rows := make([]storage.Row, len(es))
		for k, en := range es {
			rows[k] = en.row
		}
		out.lists[i] = rows
	}
	return out, nil
}

// aggShared is the read-only compiled form of a HashAgg, shared by all
// worker sinks.
type aggShared struct {
	spec    *HashAgg
	groupBy []expr.Compiled
	numArgs []expr.Compiled // nil entry for COUNT(*)
	denArgs []expr.Compiled // nil entry when no Den (or Den is COUNT(*))
}

func newAggShared(a *HashAgg) *aggShared {
	sh := &aggShared{
		spec:    a,
		groupBy: compileAll(a.GroupBy),
		numArgs: make([]expr.Compiled, len(a.Aggs)),
		denArgs: make([]expr.Compiled, len(a.Aggs)),
	}
	for i, spec := range a.Aggs {
		if spec.Num.Kind != spjg.AggCountStar && spec.Num.Arg != nil {
			sh.numArgs[i] = expr.Compile(spec.Num.Arg)
		}
		if spec.Den != nil && spec.Den.Kind != spjg.AggCountStar && spec.Den.Arg != nil {
			sh.denArgs[i] = expr.Compile(spec.Den.Arg)
		}
	}
	return sh
}

// aggPartial is one group's per-worker partial state.
type aggPartial struct {
	keys storage.Row
	ord  int64 // global ordinal of the group's first input row in this shard
	num  []aggState
	den  []aggState
}

// aggSink accumulates one worker's partial aggregation.
type aggSink struct {
	sh      *aggShared
	idx     map[string]int32
	groups  []*aggPartial
	keyBuf  []byte
	keyVals []sqlvalue.Value
	ordBase int64
	ctr     int64
}

func newAggSink(sh *aggShared) *aggSink {
	return &aggSink{
		sh:      sh,
		idx:     make(map[string]int32),
		keyVals: make([]sqlvalue.Value, len(sh.groupBy)),
	}
}

func (s *aggSink) begin(seq int) {
	s.ordBase = ordinal(seq, 0)
	s.ctr = 0
}

func (s *aggSink) push(in []storage.Row) error {
	sh := s.sh
	aggs := sh.spec.Aggs
	for _, r := range in {
		ord := s.ordBase | s.ctr
		s.ctr++
		key := s.keyBuf[:0]
		for i, g := range sh.groupBy {
			v, err := g(r)
			if err != nil {
				s.keyBuf = key[:0]
				return err
			}
			s.keyVals[i] = v
			key = v.AppendKey(key)
			key = append(key, '\x1f')
		}
		s.keyBuf = key[:0]
		var grp *aggPartial
		if li, ok := s.idx[string(key)]; ok {
			grp = s.groups[li]
		} else {
			keys := make(storage.Row, len(s.keyVals))
			copy(keys, s.keyVals)
			// Workers claim morsels off a shared increasing counter, so this
			// shard sees ordinals in increasing order: the first occurrence
			// is the shard's minimum.
			grp = &aggPartial{keys: keys, ord: ord, num: make([]aggState, len(aggs)), den: make([]aggState, len(aggs))}
			s.idx[string(key)] = int32(len(s.groups))
			s.groups = append(s.groups, grp)
		}
		for i := range aggs {
			st := &grp.num[i]
			st.count++
			if arg := sh.numArgs[i]; arg != nil {
				v, err := arg(r)
				if err != nil {
					return err
				}
				if err := st.accumulate(v); err != nil {
					return err
				}
			}
			if aggs[i].Den != nil {
				dst := &grp.den[i]
				dst.count++
				if arg := sh.denArgs[i]; arg != nil {
					v, err := arg(r)
					if err != nil {
						return err
					}
					if err := dst.accumulate(v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// aggShard is one worker's finished partial aggregation: groups in
// first-seen order plus the key index used to merge shards.
type aggShard struct {
	idx    map[string]int32
	groups []*aggPartial
}

// finishAgg merges per-worker shards in global first-seen order and renders
// the final rows, matching the reference evaluator's output exactly.
func finishAgg(shards []aggShard, a *HashAgg) ([]storage.Row, error) {
	var merged []*aggPartial
	if len(shards) == 1 {
		merged = shards[0].groups
	} else {
		idx := make(map[string]int32)
		for _, sh := range shards {
			for k, li := range sh.idx {
				g := sh.groups[li]
				if gi, ok := idx[k]; ok {
					t := merged[gi]
					if g.ord < t.ord {
						t.ord = g.ord
					}
					for i := range t.num {
						if err := t.num[i].merge(&g.num[i]); err != nil {
							return nil, err
						}
						if err := t.den[i].merge(&g.den[i]); err != nil {
							return nil, err
						}
					}
				} else {
					idx[k] = int32(len(merged))
					merged = append(merged, g)
				}
			}
		}
	}
	if len(a.GroupBy) == 0 && len(merged) == 0 {
		return []storage.Row{scalarEmptyAggRow(a.Aggs)}, nil
	}
	sort.Slice(merged, func(i, j int) bool { return merged[i].ord < merged[j].ord })
	out := make([]storage.Row, 0, len(merged))
	for _, g := range merged {
		row, err := finishAggRow(g.keys, g.num, g.den, a.Aggs)
		if err != nil {
			return nil, err
		}
		out = append(out, row)
	}
	return out, nil
}

// runAgg executes a HashAgg: the input pipeline feeds per-worker partial
// states, merged in global first-seen order to match the reference
// evaluator's output exactly. Aggregations directly over a columnar scan
// with column/constant keys and arguments run fused (colagg.go): group keys
// and aggregate inputs are read straight out of column blocks with no
// intermediate row materialization.
func (e *Engine) runAgg(db storage.Reader, a *HashAgg) ([]storage.Row, error) {
	src, specs, err := e.stream(db, a.In)
	if err != nil {
		return nil, err
	}
	if ss, ok := src.(*scanSource); ok && len(specs) == 0 {
		if fa := newFusedAgg(ss, a); fa != nil {
			return e.runFusedAgg(fa, a)
		}
	}
	if rs, ok := src.(*ridRowSource); ok && len(specs) == 0 && !rs.projected {
		// Aggregate straight over rid tuples: group keys and aggregate
		// arguments are evaluated over a scratch row holding only the
		// columns they reference, and no join output is ever gathered.
		return e.runRidAgg(rs, a)
	}
	sh := newAggShared(a)
	sinks, err := e.runPipeline(src, specs, func(int) morselSink { return newAggSink(sh) })
	if err != nil {
		return nil, err
	}
	shards := make([]aggShard, len(sinks))
	for i, s := range sinks {
		as := s.(*aggSink)
		shards[i] = aggShard{idx: as.idx, groups: as.groups}
	}
	return finishAgg(shards, a)
}
