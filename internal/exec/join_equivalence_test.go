package exec

import (
	"fmt"
	"math"
	"math/rand"
	"testing"

	"matview/internal/catalog"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// joinDB builds a two-table fixture exercising every join-key class the rid
// path specializes: int, float (integral, fractional, NaN), string, date,
// bool, a NULL-heavy int key, and a deliberately degraded column (mixed
// kinds force the Generic overlay, which in turn forces the boxed key
// fallback). Both tables share the column layout so any column pair can key
// a join.
//
// dim/fact columns: 0 id(int) 1 key_int(int,NULL-heavy) 2 key_float(float)
// 3 key_str(string) 4 key_date(date) 5 key_bool(bool) 6 key_mixed(degraded)
// 7 val(int)
func joinDB(t *testing.T, dimRows, factRows int) *storage.Database {
	t.Helper()
	c := catalog.New()
	for _, name := range []string{"dim", "fact"} {
		if err := c.Add(&catalog.Table{
			Name: name,
			Columns: []catalog.Column{
				{Name: "id", Type: sqlvalue.KindInt, NotNull: true},
				{Name: "key_int", Type: sqlvalue.KindInt},
				{Name: "key_float", Type: sqlvalue.KindFloat},
				{Name: "key_str", Type: sqlvalue.KindString},
				{Name: "key_date", Type: sqlvalue.KindDate},
				{Name: "key_bool", Type: sqlvalue.KindBool},
				{Name: "key_mixed", Type: sqlvalue.KindInt},
				{Name: "val", Type: sqlvalue.KindInt, NotNull: true},
			},
			PrimaryKey: []int{0},
		}); err != nil {
			t.Fatal(err)
		}
	}
	if err := c.Validate(); err != nil {
		t.Fatal(err)
	}
	db := storage.NewDatabase(c)
	fill := func(table string, n int, seed int64) {
		rng := rand.New(rand.NewSource(seed))
		for i := 0; i < n; i++ {
			// NULL-heavy int key: a third of the rows carry no key at all.
			keyInt := sqlvalue.Null
			if rng.Intn(3) > 0 {
				keyInt = sqlvalue.NewInt(int64(rng.Intn(8)))
			}
			// Floats cover the integral fast path, genuine fractions, NaN
			// (which AppendKey collapses to one key, so NaN = NaN matches),
			// negative zero, and NULL.
			var keyFloat sqlvalue.Value
			switch rng.Intn(6) {
			case 0:
				keyFloat = sqlvalue.NewFloat(float64(rng.Intn(5))) // integral
			case 1:
				keyFloat = sqlvalue.NewFloat(float64(rng.Intn(3)) + 0.5)
			case 2:
				keyFloat = sqlvalue.NewFloat(math.NaN())
			case 3:
				keyFloat = sqlvalue.NewFloat(math.Copysign(0, -1))
			case 4:
				keyFloat = sqlvalue.Null
			default:
				keyFloat = sqlvalue.NewFloat(-1.25)
			}
			keyStr := sqlvalue.Null
			if rng.Intn(4) > 0 {
				keyStr = sqlvalue.NewString(fmt.Sprintf("s%d", rng.Intn(6)))
			}
			// key_mixed: declared int, but floats and strings land in it too,
			// degrading the column to the Generic overlay. Integral floats
			// must still meet ints across the degraded/typed boundary.
			var keyMixed sqlvalue.Value
			switch rng.Intn(5) {
			case 0:
				keyMixed = sqlvalue.NewFloat(float64(rng.Intn(4))) // = int key
			case 1:
				keyMixed = sqlvalue.NewString(fmt.Sprintf("m%d", rng.Intn(3)))
			case 2:
				keyMixed = sqlvalue.Null
			default:
				keyMixed = sqlvalue.NewInt(int64(rng.Intn(4)))
			}
			row := storage.Row{
				sqlvalue.NewInt(int64(i)),
				keyInt,
				keyFloat,
				keyStr,
				sqlvalue.NewDate(int64(19000 + rng.Intn(5))),
				sqlvalue.NewBool(rng.Intn(2) == 0),
				keyMixed,
				sqlvalue.NewInt(int64(rng.Intn(1000))),
			}
			if err := db.Table(table).Insert(row); err != nil {
				t.Fatal(err)
			}
		}
	}
	fill("dim", dimRows, 7)
	fill("fact", factRows, 11)
	db.RefreshStats()
	return db
}

// joinSweepPlans covers the key modes and pipeline shapes of the rid path:
// every typed codec, the boxed fallback, cross-kind probes, residuals,
// fused filters, projections (fused and narrowed), multi-join rid tuples,
// and aggregation directly over rid tuples.
func joinSweepPlans() map[string]Node {
	dim := func() Node { return &TableScan{Table: "dim", NCols: 8} }
	fact := func() Node { return &TableScan{Table: "fact", NCols: 8} }
	join := func(lc, rc int) *HashJoin {
		return &HashJoin{L: dim(), R: fact(), LCols: []int{lc}, RCols: []int{rc}}
	}
	threeWay := &HashJoin{
		L: &HashJoin{L: dim(), R: fact(), LCols: []int{1}, RCols: []int{1}},
		R: dim(),
		// Left side is dim++fact (16 cols); join its fact key_date to the
		// outer dim's key_date.
		LCols: []int{12},
		RCols: []int{4},
	}
	return map[string]Node{
		"int-null-heavy":  join(1, 1),
		"float":           join(2, 2),
		"string":          join(3, 3),
		"date":            join(4, 4),
		"bool-fanout":     join(5, 5),
		"int-vs-float":    join(1, 2),
		"float-vs-int":    join(2, 1),
		"str-vs-int-miss": join(3, 1),
		"multi-int-key": &HashJoin{
			L: dim(), R: fact(),
			LCols: []int{1, 4}, RCols: []int{1, 4},
		},
		"degraded-boxed": join(6, 6),
		"typed-vs-degraded": &HashJoin{
			L: dim(), R: fact(), LCols: []int{1}, RCols: []int{6},
		},
		"residual": &HashJoin{
			L: dim(), R: fact(), LCols: []int{1}, RCols: []int{1},
			Residual: expr.NewCmp(expr.GT, expr.Col(0, 15), expr.Col(0, 7)),
		},
		"filtered-leaves": &HashJoin{
			L: &TableScan{Table: "dim", NCols: 8,
				Filter: expr.NewCmp(expr.LT, expr.Col(0, 0), expr.CInt(40))},
			R: &TableScan{Table: "fact", NCols: 8,
				Filter: expr.NewCmp(expr.GE, expr.Col(0, 7), expr.CInt(250))},
			LCols: []int{1}, RCols: []int{1},
		},
		"filter-over-join": &Filter{
			In:   join(1, 1),
			Pred: expr.NewCmp(expr.NE, expr.Col(0, 7), expr.Col(0, 15)),
		},
		"project-fused": &Project{
			In:    join(1, 1),
			Exprs: []expr.Expr{expr.Col(0, 0), expr.Col(0, 8), expr.CStr("tag")},
		},
		"project-narrowed": &Project{
			In: join(1, 1),
			Exprs: []expr.Expr{
				expr.NewArith(expr.Add, expr.Col(0, 7), expr.Col(0, 15)),
			},
		},
		"three-way": threeWay,
		"three-way-agg": &HashAgg{
			In:      threeWay,
			GroupBy: []expr.Expr{expr.Col(0, 3)},
			Aggs: []AggSpec{
				{Num: SimpleAgg{Kind: spjg.AggCountStar}},
				{Num: SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, 15)}},
				{Num: SimpleAgg{Kind: spjg.AggAvg, Arg: expr.Col(0, 23)},
					Den: &SimpleAgg{Kind: spjg.AggCountStar}},
			},
		},
		"join-over-agg": &HashJoin{
			L: &HashAgg{
				In:      fact(),
				GroupBy: []expr.Expr{expr.Col(0, 1)},
				Aggs:    []AggSpec{{Num: SimpleAgg{Kind: spjg.AggCountStar}}},
			},
			R:     fact(),
			LCols: []int{0},
			RCols: []int{1},
		},
	}
}

// TestJoinEquivalenceSweep pins the late-materialization join path to the
// reference evaluator byte-for-byte: every plan shape runs at every worker
// count × batch size (including non-block-aligned sizes that split selection
// vectors mid-block) × engine variant (typed keys, boxed-key fallback, and
// the pre-rid row path), and must reproduce the reference rows in order.
func TestJoinEquivalenceSweep(t *testing.T) {
	db := joinDB(t, 80, 400)
	for name, plan := range joinSweepPlans() {
		want, err := RunReference(db, plan)
		if err != nil {
			t.Fatalf("%s: reference: %v", name, err)
		}
		for _, workers := range []int{1, 2, 4} {
			for _, bs := range []int{1, 3, 7, 64, 1024} {
				for variant, e := range map[string]*Engine{
					"typed": {Workers: workers, BatchSize: bs},
					"boxed": {Workers: workers, BatchSize: bs, DisableTypedKeys: true},
					"row":   {Workers: workers, BatchSize: bs, DisableLateMat: true},
				} {
					got, err := e.Run(db, plan)
					if err != nil {
						t.Fatalf("%s %s w=%d bs=%d: %v", name, variant, workers, bs, err)
					}
					if !rowsExactlyEqual(got, want) {
						t.Fatalf("%s %s w=%d bs=%d: output differs (%d vs %d rows)",
							name, variant, workers, bs, len(got), len(want))
					}
				}
			}
		}
	}
}

// TestJoinEquivalenceRandomChains fuzzes multi-join rid-tuple pipelines:
// random left-deep chains of 2–4 hash joins over random compatible key
// columns, with random residuals and an optional aggregate on top. Every
// plan must agree with the reference under both key codecs at a batch size
// that forces tuples through many selection-vector batches.
func TestJoinEquivalenceRandomChains(t *testing.T) {
	db := joinDB(t, 40, 120)
	rng := rand.New(rand.NewSource(42))
	keyCols := []int{1, 2, 3, 4, 6} // int, float, string, date, mixed
	for trial := 0; trial < 32; trial++ {
		tables := []string{"dim", "fact"}
		var plan Node = &TableScan{Table: tables[rng.Intn(2)], NCols: 8}
		width := 8
		joins := 1 + rng.Intn(3)
		for j := 0; j < joins; j++ {
			kc := keyCols[rng.Intn(len(keyCols))]
			// Key the new join on the same logical column of both sides so
			// matches actually occur; the left key lands in a random
			// already-joined relation's copy of that column.
			loff := rng.Intn(width/8) * 8
			h := &HashJoin{
				L:     plan,
				R:     &TableScan{Table: tables[rng.Intn(2)], NCols: 8},
				LCols: []int{loff + kc},
				RCols: []int{kc},
			}
			if rng.Intn(3) == 0 {
				h.Residual = expr.NewCmp(expr.LE, expr.Col(0, loff+7), expr.Col(0, width+7))
			}
			plan = h
			width += 8
		}
		if rng.Intn(3) == 0 {
			plan = &HashAgg{
				In:      plan,
				GroupBy: []expr.Expr{expr.Col(0, 3)},
				Aggs: []AggSpec{
					{Num: SimpleAgg{Kind: spjg.AggCountStar}},
					{Num: SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, width - 1)}},
				},
			}
		}
		want, err := RunReference(db, plan)
		if err != nil {
			t.Fatalf("trial %d: reference: %v", trial, err)
		}
		for variant, e := range map[string]*Engine{
			"typed": {Workers: 4, BatchSize: 13},
			"boxed": {Workers: 4, BatchSize: 13, DisableTypedKeys: true},
		} {
			got, err := e.Run(db, plan)
			if err != nil {
				t.Fatalf("trial %d %s: %v", trial, variant, err)
			}
			if !rowsExactlyEqual(got, want) {
				t.Fatalf("trial %d %s: output differs (%d vs %d rows)\nplan:\n%s",
					trial, variant, len(got), len(want), Explain(plan))
			}
		}
	}
}
