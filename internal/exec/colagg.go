package exec

import (
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// Fused aggregation: a HashAgg directly over a columnar scan whose group
// keys and aggregate arguments are plain columns/constants (or static
// numeric chains) runs without materializing any input row. Workers walk
// column blocks — honoring the scan's fused predicate and zone-map skipping
// — and fold values straight into per-group partial states. SUM/AVG over a
// typed int or float column takes a tight typed loop (raw array read, raw
// add); a single never-null int-like group column gets an int64-keyed group
// map instead of byte-string keys. Shards merge through the same
// finishAgg path as the generic engine, so output stays byte-identical to
// RunReference.

// aggGetter reads one aggregate argument for a row ordinal. Exactly one
// access path is set: gi/gf for typed numeric chains (bool = NULL), em for
// boxed evaluation. All nil means the aggregate takes no argument (COUNT*).
type aggGetter struct {
	gi func(i int) (int64, bool)
	gf func(i int) (float64, bool)
	em colEmitter
}

type fusedAgg struct {
	ss      *scanSource
	aggs    []AggSpec
	keyEmit []colEmitter
	numGet  []aggGetter
	denGet  []aggGetter
	// intKey, when set, reads the single group-by column's raw int64 payload
	// (never-null int/date/bool column) for map lookup without key encoding.
	intKey func(i int) int64
}

// newFusedAgg compiles a fused aggregation over ss, or returns nil when some
// key or argument is not fusable (the caller falls back to the generic
// pipeline).
func newFusedAgg(ss *scanSource, a *HashAgg) *fusedAgg {
	fa := &fusedAgg{ss: ss, aggs: a.Aggs}
	fa.keyEmit = make([]colEmitter, len(a.GroupBy))
	for i, g := range a.GroupBy {
		em := ss.exprEmitter(g)
		if em == nil {
			return nil
		}
		fa.keyEmit[i] = em
	}
	fa.numGet = make([]aggGetter, len(a.Aggs))
	fa.denGet = make([]aggGetter, len(a.Aggs))
	for i, spec := range a.Aggs {
		if spec.Num.Kind != spjg.AggCountStar && spec.Num.Arg != nil {
			g, ok := fa.getter(spec.Num.Arg)
			if !ok {
				return nil
			}
			fa.numGet[i] = g
		}
		if spec.Den != nil && spec.Den.Kind != spjg.AggCountStar && spec.Den.Arg != nil {
			g, ok := fa.getter(spec.Den.Arg)
			if !ok {
				return nil
			}
			fa.denGet[i] = g
		}
	}
	if len(a.GroupBy) == 1 && !ss.projected {
		if col, ok := a.GroupBy[0].(expr.Column); ok && col.Ref.Tab == 0 && col.Ref.Col >= 0 && col.Ref.Col < len(ss.cols) {
			v := ss.cols[col.Ref.Col]
			switch v.Kind {
			case sqlvalue.KindInt, sqlvalue.KindDate, sqlvalue.KindBool:
				if v.Generic == nil && v.Nulls == nil {
					arr := v.Ints
					fa.intKey = func(i int) int64 { return arr[i] }
				}
			}
		}
	}
	return fa
}

// getter compiles one aggregate argument. Typed chains are excluded for DATE
// results: summing dates flips the running sum's kind from DATE to DOUBLE
// after the first addition, which a raw accumulator would not reproduce.
func (fa *fusedAgg) getter(arg expr.Expr) (aggGetter, bool) {
	if !fa.ss.projected {
		if nc, ok := vecNum(arg, fa.ss.cols, len(fa.ss.cols)); ok && nc.kind != sqlvalue.KindDate {
			return aggGetter{gi: nc.gi, gf: nc.gf}, true
		}
	}
	if em := fa.ss.exprEmitter(arg); em != nil {
		return aggGetter{em: em}, true
	}
	return aggGetter{}, false
}

// addIntSum folds a non-null value from an int-kind chain: the running sum
// is always NULL or BIGINT, so this is exactly accumulate(NewInt(v)).
func (st *aggState) addIntSum(v int64) {
	if st.sum.IsNull() {
		st.sum = sqlvalue.NewInt(v)
		return
	}
	st.sum = sqlvalue.NewInt(st.sum.Int() + v)
}

// addFloatSum folds a non-null value from a float-kind chain: the running
// sum is always NULL or DOUBLE, so this is exactly accumulate(NewFloat(v)),
// including the fold order's floating-point rounding.
func (st *aggState) addFloatSum(v float64) {
	if st.sum.IsNull() {
		st.sum = sqlvalue.NewFloat(v)
		return
	}
	st.sum = sqlvalue.NewFloat(st.sum.Float() + v)
}

type fusedAggWorker struct {
	fa      *fusedAgg
	idx     map[string]int32 // byte-string group keys (nil when intIdx used)
	intIdx  map[int64]int32
	groups  []*aggPartial
	keyBuf  []byte
	keyVals []sqlvalue.Value
	sc      scanScratch
}

func newFusedAggWorker(fa *fusedAgg) *fusedAggWorker {
	w := &fusedAggWorker{fa: fa, keyVals: make([]sqlvalue.Value, len(fa.keyEmit))}
	if fa.intKey != nil {
		w.intIdx = make(map[int64]int32)
	} else {
		w.idx = make(map[string]int32)
	}
	return w
}

func (w *fusedAggWorker) morsel(lo, hi, seq int) error {
	fa := w.fa
	ss := fa.ss
	pred := ss.pred
	ordBase := ordinal(seq, 0)
	var ctr int64
	for i := lo; i < hi; {
		b := i / storage.BlockRows
		be := (b + 1) * storage.BlockRows
		if be > hi {
			be = hi
		}
		if ss.skip && ss.skipBlock(b) {
			scanBlocksSkipped.Add(1)
			i = be
			continue
		}
		scanBlocksScanned.Add(1)
		for ; i < be; i++ {
			if pred != nil {
				ok, err := pred.eval(i, ss, &w.sc)
				if err != nil {
					return err
				}
				if !ok {
					continue
				}
			}
			ord := ordBase | ctr
			ctr++
			grp := w.group(i, ord)
			if err := w.accumulate(grp, i); err != nil {
				return err
			}
		}
	}
	return nil
}

func (w *fusedAggWorker) group(i int, ord int64) *aggPartial {
	fa := w.fa
	if w.intIdx != nil {
		k := fa.intKey(i)
		if li, ok := w.intIdx[k]; ok {
			return w.groups[li]
		}
		grp := w.newGroup(i, ord)
		w.intIdx[k] = int32(len(w.groups))
		w.groups = append(w.groups, grp)
		return grp
	}
	key := w.keyBuf[:0]
	for ki, em := range fa.keyEmit {
		v := em(i)
		w.keyVals[ki] = v
		key = v.AppendKey(key)
		key = append(key, '\x1f')
	}
	w.keyBuf = key[:0]
	if li, ok := w.idx[string(key)]; ok {
		return w.groups[li]
	}
	grp := w.newGroup(i, ord)
	w.idx[string(key)] = int32(len(w.groups))
	w.groups = append(w.groups, grp)
	return grp
}

func (w *fusedAggWorker) newGroup(i int, ord int64) *aggPartial {
	fa := w.fa
	keys := make(storage.Row, len(fa.keyEmit))
	for ki, em := range fa.keyEmit {
		keys[ki] = em(i)
	}
	return &aggPartial{keys: keys, ord: ord, num: make([]aggState, len(fa.aggs)), den: make([]aggState, len(fa.aggs))}
}

func (w *fusedAggWorker) accumulate(grp *aggPartial, i int) error {
	fa := w.fa
	for s := range fa.aggs {
		st := &grp.num[s]
		st.count++
		if err := applyGetter(st, &fa.numGet[s], i); err != nil {
			return err
		}
		if fa.aggs[s].Den != nil {
			dst := &grp.den[s]
			dst.count++
			if err := applyGetter(dst, &fa.denGet[s], i); err != nil {
				return err
			}
		}
	}
	return nil
}

func applyGetter(st *aggState, g *aggGetter, i int) error {
	switch {
	case g.gi != nil:
		if v, null := g.gi(i); !null {
			st.addIntSum(v)
		}
	case g.gf != nil:
		if v, null := g.gf(i); !null {
			st.addFloatSum(v)
		}
	case g.em != nil:
		return st.accumulate(g.em(i))
	}
	return nil
}

// shard finishes one worker's partial aggregation. The byte-string key index
// is materialized lazily for int-keyed workers, and only when a multi-shard
// merge actually needs it.
func (w *fusedAggWorker) shard(needIdx bool) aggShard {
	if w.idx == nil && needIdx {
		idx := make(map[string]int32, len(w.groups))
		buf := w.keyBuf
		for gi, g := range w.groups {
			key := buf[:0]
			for _, v := range g.keys {
				key = v.AppendKey(key)
				key = append(key, '\x1f')
			}
			idx[string(key)] = int32(gi)
			buf = key[:0]
		}
		w.keyBuf = buf
		w.idx = idx
	}
	return aggShard{idx: w.idx, groups: w.groups}
}

// runFusedAgg drives the fused aggregation with the same morsel distribution
// as runPipeline and merges shards through finishAgg.
func (e *Engine) runFusedAgg(fa *fusedAgg, a *HashAgg) ([]storage.Row, error) {
	bs := e.batchSize()
	n := fa.ss.numRows()
	nm := (n + bs - 1) / bs
	w := e.workers()
	if w > nm {
		w = nm
	}
	if w < 1 {
		w = 1
	}
	workers := make([]*fusedAggWorker, w)
	for i := range workers {
		workers[i] = newFusedAggWorker(fa)
	}
	if err := forEachMorsel(nm, w, func(wi, seq int) error {
		lo := seq * bs
		hi := min(lo+bs, n)
		return workers[wi].morsel(lo, hi, seq)
	}); err != nil {
		return nil, err
	}
	shards := make([]aggShard, w)
	for i, wk := range workers {
		shards[i] = wk.shard(w > 1)
	}
	return finishAgg(shards, a)
}

// ---------------------------------------------------------------------------
// Rid-fused aggregation: a HashAgg directly over a late-materialization join
// pipeline aggregates rid tuples without ever gathering join output rows.
// Group keys and aggregate arguments are the same compiled expressions the
// generic aggSink runs — evaluated over a pooled scratch row holding only the
// columns they reference — so grouping, fold order, error surfacing, and
// finishAgg merging stay byte-identical to the row path.

// ridAggSink is one worker's partial aggregation over rid tuples. The body
// of pushRids mirrors aggSink.push exactly, with the row fill replacing the
// materialized input row.
type ridAggSink struct {
	sh      *aggShared
	eval    ridEval
	sc      *ridScratch
	idx     map[string]int32
	groups  []*aggPartial
	keyBuf  []byte
	keyVals []sqlvalue.Value
	ordBase int64
	ctr     int64
}

func newRidAggSink(sh *aggShared, eval ridEval) *ridAggSink {
	return &ridAggSink{
		sh:      sh,
		eval:    eval,
		sc:      ridScratchPool.Get().(*ridScratch),
		idx:     make(map[string]int32),
		keyVals: make([]sqlvalue.Value, len(sh.groupBy)),
	}
}

func (s *ridAggSink) release() {
	if s.sc != nil {
		ridScratchPool.Put(s.sc)
		s.sc = nil
	}
}

func (s *ridAggSink) begin(seq int) {
	s.ordBase = ordinal(seq, 0)
	s.ctr = 0
}

func (s *ridAggSink) pushRids(in *ridBatch) error {
	sh := s.sh
	aggs := sh.spec.Aggs
	r := s.sc.wideRow(s.eval.width)
	for k := 0; k < in.n; k++ {
		ord := s.ordBase | s.ctr
		s.ctr++
		s.eval.fill(r, in, k)
		key := s.keyBuf[:0]
		for i, g := range sh.groupBy {
			v, err := g(r)
			if err != nil {
				s.keyBuf = key[:0]
				return err
			}
			s.keyVals[i] = v
			key = v.AppendKey(key)
			key = append(key, '\x1f')
		}
		s.keyBuf = key[:0]
		var grp *aggPartial
		if li, ok := s.idx[string(key)]; ok {
			grp = s.groups[li]
		} else {
			keys := make(storage.Row, len(s.keyVals))
			copy(keys, s.keyVals)
			grp = &aggPartial{keys: keys, ord: ord, num: make([]aggState, len(aggs)), den: make([]aggState, len(aggs))}
			s.idx[string(key)] = int32(len(s.groups))
			s.groups = append(s.groups, grp)
		}
		for i := range aggs {
			st := &grp.num[i]
			st.count++
			if arg := sh.numArgs[i]; arg != nil {
				v, err := arg(r)
				if err != nil {
					return err
				}
				if err := st.accumulate(v); err != nil {
					return err
				}
			}
			if aggs[i].Den != nil {
				dst := &grp.den[i]
				dst.count++
				if arg := sh.denArgs[i]; arg != nil {
					v, err := arg(r)
					if err != nil {
						return err
					}
					if err := dst.accumulate(v); err != nil {
						return err
					}
				}
			}
		}
	}
	return nil
}

// runRidAgg aggregates a rid pipeline's tuples directly, skipping the gather
// stage entirely: only columns referenced by group keys, aggregate arguments,
// or residual/filter predicates are ever touched.
func (e *Engine) runRidAgg(rs *ridRowSource, a *HashAgg) ([]storage.Row, error) {
	sh := newAggShared(a)
	refs := make([]expr.Expr, 0, len(a.GroupBy)+2*len(a.Aggs))
	refs = append(refs, a.GroupBy...)
	for _, spec := range a.Aggs {
		if spec.Num.Kind != spjg.AggCountStar && spec.Num.Arg != nil {
			refs = append(refs, spec.Num.Arg)
		}
		if spec.Den != nil && spec.Den.Kind != spjg.AggCountStar && spec.Den.Arg != nil {
			refs = append(refs, spec.Den.Arg)
		}
	}
	eval := newRidEval(rs.layout, refs...)
	sinks, err := e.runRidPipeline(rs.src, rs.stages, func(int) ridMorselSink {
		return newRidAggSink(sh, eval)
	})
	if err != nil {
		return nil, err
	}
	shards := make([]aggShard, len(sinks))
	for i, s := range sinks {
		as := s.(*ridAggSink)
		shards[i] = aggShard{idx: as.idx, groups: as.groups}
	}
	return finishAgg(shards, a)
}
