package exec

import (
	"encoding/binary"
	"math"
	"sort"

	"matview/internal/expr"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// Typed join keys for the late-materialization join path.
//
// The equality classes here reproduce sqlvalue.AppendKey exactly, so typed
// and boxed keying are interchangeable: bools, ints, and dates share one
// int64 key space (AppendKey encodes all three as decimal ints), integral
// floats (f == Trunc(f), |f| < 1e15) collapse into that int space, other
// floats key by their bit pattern with every NaN collapsed to one canonical
// key (AppendKey formats all NaNs as "NaN"), and strings key by their bytes.
// NULL never produces a key on either side.
//
// The key mode is chosen from the BUILD side's static column kinds only —
// the build pipeline runs to completion before the probe side is even
// decomposed, matching the reference evaluator's left-then-right execution
// order. The probe codec is then compiled into the build's key space: a
// probe int column under a float-keyed build emits int-space fkeys, a probe
// string column under an int-keyed build is a constant miss, and generic or
// row-backed probe columns box the value and classify it at runtime.

type ridKeyMode uint8

const (
	keyModeBoxed  ridKeyMode = iota // sqlvalue.AppendKey composite (fallback)
	keyModeInt1                     // single int/date/bool column
	keyModeFloat1                   // single float column (fkey space)
	keyModeStr1                     // single string column
	keyModeIntN                     // multiple int-family columns, 8 bytes each
)

// fkey is the key space of a float join column: integral floats live in the
// int space (flt=false, bits=the integer) alongside int/date/bool keys;
// non-integral floats key by bit pattern with NaN canonicalized.
type fkey struct {
	flt  bool
	bits int64
}

func intFkey(v int64) fkey { return fkey{bits: v} }

func floatFkey(f float64) fkey {
	if f == math.Trunc(f) && math.Abs(f) < 1e15 {
		return fkey{bits: int64(f)}
	}
	if math.IsNaN(f) {
		f = math.NaN()
	}
	return fkey{flt: true, bits: int64(math.Float64bits(f))}
}

// valueIntKey classifies a boxed value into the int key space, reporting
// false for NULLs and for values outside the class (a miss, not an error).
func valueIntKey(v sqlvalue.Value) (int64, bool) {
	switch v.Kind() {
	case sqlvalue.KindInt:
		return v.Int(), true
	case sqlvalue.KindDate:
		return v.DateDays(), true
	case sqlvalue.KindBool:
		if v.Bool() {
			return 1, true
		}
		return 0, true
	case sqlvalue.KindFloat:
		f := v.Float()
		if f == math.Trunc(f) && math.Abs(f) < 1e15 {
			return int64(f), true
		}
		return 0, false
	default:
		return 0, false
	}
}

func valueFkey(v sqlvalue.Value) (fkey, bool) {
	switch v.Kind() {
	case sqlvalue.KindInt:
		return intFkey(v.Int()), true
	case sqlvalue.KindDate:
		return intFkey(v.DateDays()), true
	case sqlvalue.KindBool:
		if v.Bool() {
			return intFkey(1), true
		}
		return intFkey(0), true
	case sqlvalue.KindFloat:
		return floatFkey(v.Float()), true
	default:
		return fkey{}, false
	}
}

func valueStrKey(v sqlvalue.Value) (string, bool) {
	if v.Kind() == sqlvalue.KindString {
		return v.Str(), true
	}
	return "", false
}

// classifyKeys picks the key mode for a build layout's key columns. Typed
// modes require store-backed, non-degraded (no Generic overlay) columns.
func classifyKeys(layout *ridLayout, cols []int, disableTyped bool) ridKeyMode {
	if disableTyped || len(cols) == 0 {
		return keyModeBoxed
	}
	kinds := make([]sqlvalue.Kind, len(cols))
	for i, c := range cols {
		if c < 0 || c >= layout.width() {
			return keyModeBoxed
		}
		rel, local := layout.locate(c)
		r := layout.rels[rel]
		if r.store == nil || r.cols[local].Generic != nil {
			return keyModeBoxed
		}
		kinds[i] = r.cols[local].Kind
	}
	if len(cols) == 1 {
		switch kinds[0] {
		case sqlvalue.KindInt, sqlvalue.KindDate, sqlvalue.KindBool:
			return keyModeInt1
		case sqlvalue.KindFloat:
			return keyModeFloat1
		case sqlvalue.KindString:
			return keyModeStr1
		default: // KindNull: every key is NULL; boxed path skips them all
			return keyModeBoxed
		}
	}
	for _, k := range kinds {
		switch k {
		case sqlvalue.KindInt, sqlvalue.KindDate, sqlvalue.KindBool:
		default:
			return keyModeBoxed
		}
	}
	return keyModeIntN
}

// ---------------------------------------------------------------------------
// Key getters: column → key-space value, straight off typed arrays

// intKeyGetter reads one column as an int-space key. Typed int-family
// columns read the array directly; typed float columns apply the integral
// check; string and never-set columns are constant misses; generic or
// row-backed columns box and classify per value.
func intKeyGetter(layout *ridLayout, col int) func(in *ridBatch, k int) (int64, bool) {
	rel, local := layout.locate(col)
	r := layout.rels[rel]
	if r.store != nil && r.cols[local].Generic == nil {
		v := r.cols[local]
		switch v.Kind {
		case sqlvalue.KindInt, sqlvalue.KindDate, sqlvalue.KindBool:
			a, nulls := v.Ints, v.Nulls
			if nulls == nil {
				return func(in *ridBatch, k int) (int64, bool) { return a[in.sel[rel][k]], true }
			}
			return func(in *ridBatch, k int) (int64, bool) {
				rid := in.sel[rel][k]
				if bitSet(nulls, int(rid)) {
					return 0, false
				}
				return a[rid], true
			}
		case sqlvalue.KindFloat:
			a, nulls := v.Floats, v.Nulls
			return func(in *ridBatch, k int) (int64, bool) {
				rid := in.sel[rel][k]
				if nulls != nil && bitSet(nulls, int(rid)) {
					return 0, false
				}
				f := a[rid]
				if f == math.Trunc(f) && math.Abs(f) < 1e15 {
					return int64(f), true
				}
				return 0, false
			}
		default: // string or all-NULL column: nothing in the int key class
			return func(*ridBatch, int) (int64, bool) { return 0, false }
		}
	}
	em := r.emitter(local)
	return func(in *ridBatch, k int) (int64, bool) { return valueIntKey(em(int(in.sel[rel][k]))) }
}

func fkeyGetter(layout *ridLayout, col int) func(in *ridBatch, k int) (fkey, bool) {
	rel, local := layout.locate(col)
	r := layout.rels[rel]
	if r.store != nil && r.cols[local].Generic == nil {
		v := r.cols[local]
		switch v.Kind {
		case sqlvalue.KindInt, sqlvalue.KindDate, sqlvalue.KindBool:
			a, nulls := v.Ints, v.Nulls
			return func(in *ridBatch, k int) (fkey, bool) {
				rid := in.sel[rel][k]
				if nulls != nil && bitSet(nulls, int(rid)) {
					return fkey{}, false
				}
				return intFkey(a[rid]), true
			}
		case sqlvalue.KindFloat:
			a, nulls := v.Floats, v.Nulls
			return func(in *ridBatch, k int) (fkey, bool) {
				rid := in.sel[rel][k]
				if nulls != nil && bitSet(nulls, int(rid)) {
					return fkey{}, false
				}
				return floatFkey(a[rid]), true
			}
		default:
			return func(*ridBatch, int) (fkey, bool) { return fkey{}, false }
		}
	}
	em := r.emitter(local)
	return func(in *ridBatch, k int) (fkey, bool) { return valueFkey(em(int(in.sel[rel][k]))) }
}

func strKeyGetter(layout *ridLayout, col int) func(in *ridBatch, k int) (string, bool) {
	rel, local := layout.locate(col)
	r := layout.rels[rel]
	if r.store != nil && r.cols[local].Generic == nil {
		v := r.cols[local]
		if v.Kind == sqlvalue.KindString {
			a, nulls := v.Strs, v.Nulls
			return func(in *ridBatch, k int) (string, bool) {
				rid := in.sel[rel][k]
				if nulls != nil && bitSet(nulls, int(rid)) {
					return "", false
				}
				return a[rid], true
			}
		}
		return func(*ridBatch, int) (string, bool) { return "", false }
	}
	em := r.emitter(local)
	return func(in *ridBatch, k int) (string, bool) { return valueStrKey(em(int(in.sel[rel][k]))) }
}

// ---------------------------------------------------------------------------
// Key codec

type ridBoxCol struct {
	rel int
	em  colEmitter
}

// ridKeyCodec extracts join keys from rid tuples in a fixed mode. The same
// constructor serves both sides: the build side passes its own layout, the
// probe side passes its layout with the build's mode, which compiles the
// adapters that map probe columns into the build's key space.
type ridKeyCodec struct {
	mode ridKeyMode
	gi   func(in *ridBatch, k int) (int64, bool)
	gf   func(in *ridBatch, k int) (fkey, bool)
	gs   func(in *ridBatch, k int) (string, bool)
	gn   []func(in *ridBatch, k int) (int64, bool)
	box  []ridBoxCol
}

func newRidKeyCodec(mode ridKeyMode, layout *ridLayout, cols []int) *ridKeyCodec {
	c := &ridKeyCodec{mode: mode}
	switch mode {
	case keyModeInt1:
		c.gi = intKeyGetter(layout, cols[0])
	case keyModeFloat1:
		c.gf = fkeyGetter(layout, cols[0])
	case keyModeStr1:
		c.gs = strKeyGetter(layout, cols[0])
	case keyModeIntN:
		for _, col := range cols {
			c.gn = append(c.gn, intKeyGetter(layout, col))
		}
	default:
		for _, col := range cols {
			rel, local := layout.locate(col)
			c.box = append(c.box, ridBoxCol{rel: rel, em: layout.rels[rel].emitter(local)})
		}
	}
	return c
}

// appendKey serializes a composite key (IntN and boxed modes), reporting
// false when any component is NULL (or outside the int class for IntN).
func (c *ridKeyCodec) appendKey(buf []byte, in *ridBatch, k int) ([]byte, bool) {
	if c.mode == keyModeIntN {
		var tmp [8]byte
		for _, g := range c.gn {
			v, ok := g(in, k)
			if !ok {
				return buf, false
			}
			binary.LittleEndian.PutUint64(tmp[:], uint64(v))
			buf = append(buf, tmp[:]...)
		}
		return buf, true
	}
	for i := range c.box {
		bc := &c.box[i]
		v := bc.em(int(in.sel[bc.rel][k]))
		if v.IsNull() {
			return buf, false
		}
		buf = v.AppendKey(buf)
		buf = append(buf, '\x1f')
	}
	return buf, true
}

// ---------------------------------------------------------------------------
// Build side

// ridJoinBuild is a finished, immutable rid-join build table shared by all
// probe workers: key → flat rid tuples (stride = arity) in build-input order.
// Exactly one of the index maps is populated, per mode.
type ridJoinBuild struct {
	arity  int
	mode   ridKeyMode
	intIdx map[int64]int32
	fltIdx map[fkey]int32
	strIdx map[string]int32
	lists  [][]int32
}

// ridBuildSink accumulates one worker's shard. Ordinals are assigned per
// input tuple — before the NULL-key check — mirroring buildSink, so merged
// per-key lists restore to exactly the row path's build-input order.
type ridBuildSink struct {
	codec   *ridKeyCodec
	arity   int
	intIdx  map[int64]int32
	fltIdx  map[fkey]int32
	strIdx  map[string]int32
	lists   [][]int32
	ords    [][]int64
	keyBuf  []byte
	ordBase int64
	ctr     int64
}

func newRidBuildSink(codec *ridKeyCodec, arity int) *ridBuildSink {
	b := &ridBuildSink{codec: codec, arity: arity}
	switch codec.mode {
	case keyModeInt1:
		b.intIdx = make(map[int64]int32)
	case keyModeFloat1:
		b.fltIdx = make(map[fkey]int32)
	default:
		b.strIdx = make(map[string]int32)
	}
	return b
}

func (b *ridBuildSink) begin(seq int) {
	b.ordBase = ordinal(seq, 0)
	b.ctr = 0
}

func (b *ridBuildSink) pushRids(in *ridBatch) error {
	for k := 0; k < in.n; k++ {
		ord := b.ordBase | b.ctr
		b.ctr++
		li, ok := b.slot(in, k)
		if !ok {
			continue
		}
		if int(li) == len(b.lists) {
			b.lists = append(b.lists, nil)
			b.ords = append(b.ords, nil)
		}
		for r := 0; r < b.arity; r++ {
			b.lists[li] = append(b.lists[li], in.sel[r][k])
		}
		b.ords[li] = append(b.ords[li], ord)
	}
	return nil
}

// slot finds or allocates the list slot for tuple k's key; false means the
// key is NULL (the tuple is dropped). A returned slot equal to len(lists)
// signals a fresh key — the caller appends the new list.
func (b *ridBuildSink) slot(in *ridBatch, k int) (int32, bool) {
	switch b.codec.mode {
	case keyModeInt1:
		v, ok := b.codec.gi(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.intIdx[v]
		if !ok {
			li = int32(len(b.lists))
			b.intIdx[v] = li
		}
		return li, true
	case keyModeFloat1:
		v, ok := b.codec.gf(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.fltIdx[v]
		if !ok {
			li = int32(len(b.lists))
			b.fltIdx[v] = li
		}
		return li, true
	case keyModeStr1:
		s, ok := b.codec.gs(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.strIdx[s]
		if !ok {
			li = int32(len(b.lists))
			b.strIdx[s] = li
		}
		return li, true
	default:
		key, ok := b.codec.appendKey(b.keyBuf[:0], in, k)
		b.keyBuf = key[:0]
		if !ok {
			return 0, false
		}
		li, ok := b.strIdx[string(key)]
		if !ok {
			li = int32(len(b.lists))
			b.strIdx[string(key)] = li
		}
		return li, true
	}
}

// buildRidJoin executes the build side of a hash join as a rid pipeline and
// merges the per-worker shards. ok=false means a relation overflowed the rid
// address space and the caller must fall back to the row path.
func (e *Engine) buildRidJoin(db storage.Reader, j *HashJoin) (*ridJoinBuild, *ridLayout, bool, error) {
	src, layout, stages, ok, err := e.streamRids(db, j.L)
	if err != nil {
		return nil, nil, false, err
	}
	if !ok {
		rows, err := e.materialize(db, j.L)
		if err != nil {
			return nil, nil, false, err
		}
		if len(rows) > maxRid {
			return nil, nil, false, nil
		}
		layout = singleLayout(rowsRel(rows, j.L.Width()))
		src, stages = rowsRidSource(rows), nil
	}
	mode := classifyKeys(layout, j.LCols, e.DisableTypedKeys)
	codec := newRidKeyCodec(mode, layout, j.LCols)
	arity := layout.arity()
	sinks, err := e.runRidPipeline(src, stages, func(int) ridMorselSink {
		return newRidBuildSink(codec, arity)
	})
	if err != nil {
		return nil, nil, false, err
	}
	return mergeRidBuild(sinks, mode, arity), layout, true, nil
}

func mergeRidShards[K comparable](idx map[K]int32, sinks []ridMorselSink, get func(*ridBuildSink) map[K]int32) ([][]int32, [][]int64) {
	var lists [][]int32
	var ords [][]int64
	for _, s := range sinks {
		b := s.(*ridBuildSink)
		for key, li := range get(b) {
			if gi, ok := idx[key]; ok {
				lists[gi] = append(lists[gi], b.lists[li]...)
				ords[gi] = append(ords[gi], b.ords[li]...)
			} else {
				idx[key] = int32(len(lists))
				lists = append(lists, b.lists[li])
				ords = append(ords, b.ords[li])
			}
		}
	}
	return lists, ords
}

func mergeRidBuild(sinks []ridMorselSink, mode ridKeyMode, arity int) *ridJoinBuild {
	out := &ridJoinBuild{arity: arity, mode: mode}
	if len(sinks) == 1 {
		// Single shard: lists are already in ordinal order.
		b := sinks[0].(*ridBuildSink)
		out.intIdx, out.fltIdx, out.strIdx, out.lists = b.intIdx, b.fltIdx, b.strIdx, b.lists
		return out
	}
	var lists [][]int32
	var ords [][]int64
	switch mode {
	case keyModeInt1:
		out.intIdx = make(map[int64]int32)
		lists, ords = mergeRidShards(out.intIdx, sinks, func(b *ridBuildSink) map[int64]int32 { return b.intIdx })
	case keyModeFloat1:
		out.fltIdx = make(map[fkey]int32)
		lists, ords = mergeRidShards(out.fltIdx, sinks, func(b *ridBuildSink) map[fkey]int32 { return b.fltIdx })
	default:
		out.strIdx = make(map[string]int32)
		lists, ords = mergeRidShards(out.strIdx, sinks, func(b *ridBuildSink) map[string]int32 { return b.strIdx })
	}
	for i := range lists {
		sortRidList(lists[i], ords[i], arity)
	}
	out.lists = lists
	return out
}

// sortRidList restores one merged per-key list to global ordinal order,
// permuting stride-sized rid groups in lockstep with their ordinals.
func sortRidList(rids []int32, ords []int64, arity int) {
	n := len(ords)
	if n < 2 {
		return
	}
	sorted := true
	for i := 1; i < n; i++ {
		if ords[i] < ords[i-1] {
			sorted = false
			break
		}
	}
	if sorted {
		return
	}
	perm := make([]int, n)
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(a, b int) bool { return ords[perm[a]] < ords[perm[b]] })
	tmp := make([]int32, len(rids))
	for dst, src := range perm {
		copy(tmp[dst*arity:(dst+1)*arity], rids[src*arity:(src+1)*arity])
	}
	copy(rids, tmp)
}

// ---------------------------------------------------------------------------
// Probe side

type ridProbeSpec struct {
	build    *ridJoinBuild
	keys     *ridKeyCodec
	residual expr.CompiledPredicate
	resEval  ridEval
	outArity int
	batch    int
}

func (s *ridProbeSpec) makeRid(next ridPusher) ridPusher {
	return &ridProbeStage{spec: s, next: next, sc: ridScratchPool.Get().(*ridScratch)}
}

// ridProbeStage matches probe tuples against the build table batch-at-a-time
// and extends each surviving tuple with the matching build entry's rids: the
// output tuple is (build rels..., probe rels...), matching the row path's
// left++right concatenation. All scratch is pooled per worker.
type ridProbeStage struct {
	spec *ridProbeSpec
	next ridPusher
	sc   *ridScratch
	out  ridBatch
}

func (p *ridProbeStage) release() {
	if p.sc != nil {
		ridScratchPool.Put(p.sc)
		p.sc = nil
	}
}

func (p *ridProbeStage) flush() error {
	out := &p.out
	if out.n == 0 {
		return nil
	}
	err := p.next.pushRids(out)
	for r := range out.sel {
		out.sel[r] = out.sel[r][:0]
	}
	out.n = 0
	return err
}

func (p *ridProbeStage) pushRids(in *ridBatch) error {
	s := p.spec
	b := s.build
	ba := b.arity
	out := &p.out
	out.sel = p.sc.selVecs(s.outArity)
	for r := range out.sel {
		out.sel[r] = out.sel[r][:0]
	}
	out.n = 0
	var row storage.Row
	if s.residual != nil {
		row = p.sc.wideRow(s.resEval.width)
	}
	matched := 0
	for k := 0; k < in.n; k++ {
		li, ok := p.lookup(in, k)
		if !ok {
			continue
		}
		matched++
		lst := b.lists[li]
		for e := 0; e < len(lst); e += ba {
			ent := lst[e : e+ba]
			if s.residual != nil {
				s.resEval.fillJoin(row, ent, in, k, ba)
				pass, err := s.residual(row)
				if err != nil {
					return err
				}
				if !pass {
					continue
				}
			}
			for r := 0; r < ba; r++ {
				out.sel[r] = append(out.sel[r], ent[r])
			}
			for r := ba; r < s.outArity; r++ {
				out.sel[r] = append(out.sel[r], in.sel[r-ba][k])
			}
			out.n++
			if out.n >= s.batch {
				if err := p.flush(); err != nil {
					return err
				}
			}
		}
	}
	scanRowsProbed.Add(int64(in.n))
	scanRowsMatched.Add(int64(matched))
	return p.flush()
}

func (p *ridProbeStage) lookup(in *ridBatch, k int) (int32, bool) {
	s := p.spec
	b := s.build
	switch b.mode {
	case keyModeInt1:
		v, ok := s.keys.gi(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.intIdx[v]
		return li, ok
	case keyModeFloat1:
		v, ok := s.keys.gf(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.fltIdx[v]
		return li, ok
	case keyModeStr1:
		v, ok := s.keys.gs(in, k)
		if !ok {
			return 0, false
		}
		li, ok := b.strIdx[v]
		return li, ok
	default:
		key, ok := s.keys.appendKey(p.sc.keyBuf[:0], in, k)
		p.sc.keyBuf = key[:0]
		if !ok {
			return 0, false
		}
		li, ok := b.strIdx[string(key)]
		return li, ok
	}
}
