// Package maintain implements incremental maintenance of materialized views —
// the second of the paper's three issues ("view maintenance: efficiently
// updating materialized views when base tables are updated", §1) and the
// reason §2 requires every aggregation view to carry a COUNT_BIG(*) column:
// "so deletions can be handled incrementally (when the count becomes zero,
// the group is empty and the row must be deleted)".
//
// The algorithms are the classic delta rules for SPJG views with a single
// changed table instance: the delta query Q(T ← Δ) is evaluated against the
// unchanged remainder of the database; SPJ views append or bag-subtract the
// delta rows; aggregation views merge the delta's partial aggregates into the
// stored groups, inserting new groups and deleting groups whose count reaches
// zero. Views referencing the changed table more than once (self-joins) fall
// back to full recomputation, as production systems also commonly do.
package maintain

import (
	"fmt"

	"matview/internal/exec"
	"matview/internal/faults"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
)

// View is one maintained materialized view.
type View struct {
	Name string
	Def  *spjg.Query

	// Derived layout for aggregation views: positions of group keys, the
	// count column, and sum columns in the output row.
	isAgg   bool
	keyPos  []int
	cntPos  int
	sumPos  []int
	sumArgs []int // parallel to sumPos; index into Def.Outputs
}

// Maintainer tracks a set of materialized views, applies base-table changes
// to them, and runs each view's health lifecycle (see State): a view whose
// maintenance fails is marked Stale before the statement returns, repaired
// by Repair with backoff, and Quarantined if repairs keep failing.
//
// Insert, Delete, Repair, Register, and Drop must be externally serialized
// (the server runs them under its exclusive lock); the lifecycle ledger —
// ViewState, Stats, ViewsInState — may be read concurrently.
type Maintainer struct {
	db    *storage.Database
	views []*View

	// faults guards the maintainer's own mutation sites; nil outside chaos
	// runs.
	faults *faults.Injector

	lc *lifecycle
}

// New returns a maintainer over the database.
func New(db *storage.Database) *Maintainer {
	return &Maintainer{db: db, lc: newLifecycle()}
}

// Register materializes the view (if not already stored) and starts
// maintaining it. The definition must satisfy the indexable-view rules —
// exactly the restrictions §2 imposes to make incremental maintenance
// possible.
func (m *Maintainer) Register(name string, def *spjg.Query) (*View, error) {
	if err := def.ValidateAsView(); err != nil {
		return nil, err
	}
	v := &View{Name: name, Def: def, isAgg: def.IsAggregate(), cntPos: -1}
	if v.isAgg {
		for i, o := range def.Outputs {
			switch {
			case o.Expr != nil:
				v.keyPos = append(v.keyPos, i)
			case o.Agg != nil && o.Agg.Kind == spjg.AggCountStar:
				v.cntPos = i
			case o.Agg != nil && o.Agg.Kind == spjg.AggSum:
				v.sumPos = append(v.sumPos, i)
				v.sumArgs = append(v.sumArgs, i)
			default:
				return nil, fmt.Errorf("maintain: view %s: unsupported aggregate", name)
			}
		}
		if v.cntPos < 0 {
			return nil, fmt.Errorf("maintain: view %s lacks COUNT_BIG(*)", name)
		}
	}
	if m.db.View(name) == nil {
		if _, err := exec.Materialize(m.db, name, def); err != nil {
			m.db.RollbackView(name)
			return nil, err
		}
	}
	m.views = append(m.views, v)
	m.lc.register(name)
	// Publish the materialization so the committed epoch always contains
	// every registered view (RollbackView relies on that to distinguish
	// "restore committed contents" from "drop a never-committed view").
	if _, err := m.db.CommitDurable(); err != nil {
		m.db.RollbackView(name)
		m.views = m.views[:len(m.views)-1]
		m.lc.drop(name)
		return nil, fmt.Errorf("maintain: commit of view %s failed: %w", name, err)
	}
	return v, nil
}

// Views returns the maintained views.
func (m *Maintainer) Views() []*View { return m.views }

// Drop stops maintaining a view and removes its materialized rows from
// storage; it reports whether the view was registered. A commit failure
// (durable servers whose WAL refused the drop record) restores the view —
// storage, registration, and ledger entry — and returns the error.
func (m *Maintainer) Drop(name string) (bool, error) {
	for i, v := range m.views {
		if v.Name == name {
			m.views = append(m.views[:i], m.views[i+1:]...)
			m.db.DropView(name)
			if _, err := m.db.CommitDurable(); err != nil {
				m.db.RollbackView(name)
				m.views = append(m.views, v)
				return true, fmt.Errorf("maintain: commit of drop view %s failed: %w", name, err)
			}
			m.lc.drop(name)
			return true, nil
		}
	}
	return false, nil
}

// instancesOf counts how many times the view references the table.
func instancesOf(def *spjg.Query, table string) int {
	n := 0
	for _, t := range def.Tables {
		if t.Table.Name == table {
			n++
		}
	}
	return n
}

// Insert appends rows to a base table and incrementally maintains every
// registered view, as one snapshot-to-snapshot commit: deltas are computed
// read-only against the committed epoch, the base write and every successful
// per-view apply are published together as the next epoch, and failures roll
// the affected object back to its committed contents. Concretely:
//
//   - A base-write failure aborts the whole statement. The table head is
//     rolled back, no view is touched, and the epoch does not advance — the
//     returned *MaintenanceError has Base set and nothing in Updated.
//   - A per-view failure does not abort the statement: the failing view is
//     rolled back to its committed (pre-statement) contents — consistent but
//     stale, never torn — and marked Stale before Insert returns; the
//     remaining views and the base write still commit.
//
// Non-Fresh views are not touched (Repair owns them); the returned error
// names exactly which views were updated, failed, or skipped.
func (m *Maintainer) Insert(table string, rows []storage.Row) error {
	t := m.db.Table(table)
	if t == nil {
		return fmt.Errorf("maintain: unknown table %q", table)
	}
	rep := &MaintenanceError{Op: "insert", Table: table}
	// Phase 1 — read-only: compute each eligible single-instance view's delta
	// Q(T ← Δ) against the pre-insert state. Only `table` changes, so
	// evaluation order relative to the base write is irrelevant for these
	// views. Nothing is marked Stale yet: if the base write below aborts, a
	// view whose delta merely failed to compute is still consistent.
	type pending struct {
		v     *View
		delta []storage.Row
	}
	var pendings []pending
	var computeFailed []ViewError
	var selfJoin []*View
	for _, v := range m.views {
		switch instancesOf(v.Def, table) {
		case 0:
			continue
		case 1:
			if st, _ := m.ViewState(v.Name); st != Fresh {
				rep.Skipped = append(rep.Skipped, v.Name)
				continue
			}
			delta, err := m.computeDelta(v, table, rows)
			if err != nil {
				computeFailed = append(computeFailed, ViewError{v.Name, err})
				continue
			}
			pendings = append(pendings, pending{v, delta})
		default:
			// Self-join views are recomputed after the base insert below.
			selfJoin = append(selfJoin, v)
		}
	}
	// Phase 2 — base write. Failure aborts the statement: the table head is
	// rolled back to the committed epoch, so a mid-batch failure cannot
	// persist a prefix of the batch, and every view stays consistent.
	if err := guard(func() error {
		for _, r := range rows {
			if err := t.Insert(r); err != nil {
				return err
			}
		}
		return nil
	}); err != nil {
		m.db.RollbackTable(table)
		rep.Base = fmt.Errorf("maintain: base insert into %s failed: %w", table, err)
		return rep
	}
	// Phase 3 — apply deltas. A failing view rolls back to its committed
	// contents and goes Stale; the statement carries on.
	for _, f := range computeFailed {
		m.failView(f.View, f.Err)
		rep.Failed = append(rep.Failed, f)
	}
	for _, p := range pendings {
		if err := m.applyGuarded(p.v, p.delta, +1); err != nil {
			m.db.RollbackView(p.v.Name)
			m.failView(p.v.Name, err)
			rep.Failed = append(rep.Failed, ViewError{p.v.Name, err})
		} else {
			rep.Updated = append(rep.Updated, p.v.Name)
		}
	}
	// Phase 4 — self-join views: full recompute from the post-insert head. A
	// successful recompute also heals a Stale view; only Quarantined views
	// wait for an operator.
	for _, v := range selfJoin {
		m.recomputeInPlace(v, rep)
	}
	// Phase 5 — publish the base write and every successful view update as
	// one new epoch. Snapshots pinned before this instant keep reading the
	// previous epoch in full. A commit failure (the WAL refused the record)
	// aborts the statement: base and views roll back to the committed epoch,
	// and every view this statement touched is marked Stale — a rolled-back
	// self-join recompute may have healed a Stale view in the ledger, so the
	// restored (pre-statement) contents cannot be trusted as Fresh.
	if _, err := m.db.CommitDurable(); err != nil {
		m.db.RollbackTable(table)
		for _, name := range rep.Updated {
			m.db.RollbackView(name)
			m.failView(name, err)
		}
		rep.Updated = nil
		rep.Base = fmt.Errorf("maintain: commit of insert into %s failed: %w", table, err)
		return rep
	}
	return rep.orNil()
}

// Delete removes the base-table rows satisfying pred and incrementally
// maintains every registered view, with the same transactional contract as
// Insert: a base-write failure rolls the table back and aborts the statement
// with no view touched; a per-view failure rolls that view back to its
// committed contents and marks it Stale; everything that succeeded publishes
// as one new epoch. It returns the number of deleted rows.
func (m *Maintainer) Delete(table string, pred func(storage.Row) bool) (int, error) {
	t := m.db.Table(table)
	if t == nil {
		return 0, fmt.Errorf("maintain: unknown table %q", table)
	}
	rep := &MaintenanceError{Op: "delete", Table: table}
	var deleted []storage.Row
	err := guard(func() error {
		var derr error
		deleted, derr = t.DeleteWhere(pred)
		return derr
	})
	if err != nil {
		// DeleteWhere may have compacted the rows before an index rebuild
		// failed; rolling the table back to the committed epoch restores both
		// rows and indexes, so the views stay consistent with it.
		m.db.RollbackTable(table)
		rep.Base = fmt.Errorf("maintain: base delete from %s failed: %w", table, err)
		return 0, rep
	}
	if len(deleted) == 0 {
		return 0, nil
	}
	for _, v := range m.views {
		switch instancesOf(v.Def, table) {
		case 0:
			continue
		case 1:
			if st, _ := m.ViewState(v.Name); st != Fresh {
				rep.Skipped = append(rep.Skipped, v.Name)
				continue
			}
			// Other tables are unchanged, so Q(T ← Δ) after the base delete
			// equals the delta of the view.
			delta, derr := m.computeDelta(v, table, deleted)
			if derr == nil {
				derr = m.applyGuarded(v, delta, -1)
			}
			if derr != nil {
				m.db.RollbackView(v.Name)
				m.failView(v.Name, derr)
				rep.Failed = append(rep.Failed, ViewError{v.Name, derr})
			} else {
				rep.Updated = append(rep.Updated, v.Name)
			}
		default:
			m.recomputeInPlace(v, rep)
		}
	}
	if _, err := m.db.CommitDurable(); err != nil {
		m.db.RollbackTable(table)
		for _, name := range rep.Updated {
			m.db.RollbackView(name)
			m.failView(name, err)
		}
		rep.Updated = nil
		rep.Base = fmt.Errorf("maintain: commit of delete from %s failed: %w", table, err)
		return 0, rep
	}
	return len(deleted), rep.orNil()
}

// computeDelta evaluates the view's delta query Q(T ← Δ) against the changed
// rows, read-only over a zero-copy overlay of the database. Panics become
// errors so one broken view cannot unwind the whole statement.
func (m *Maintainer) computeDelta(v *View, table string, rows []storage.Row) (delta []storage.Row, err error) {
	err = guard(func() error {
		if ferr := m.faults.Maybe(faults.SiteMaintainDelta); ferr != nil {
			return fmt.Errorf("maintain: delta for %s: %w", v.Name, ferr)
		}
		var rerr error
		delta, rerr = exec.RunQuery(storage.NewOverlay(m.db, table, rows), v.Def)
		if rerr != nil {
			return fmt.Errorf("maintain: delta for %s: %w", v.Name, rerr)
		}
		return nil
	})
	if err != nil {
		return nil, err
	}
	return delta, nil
}

// applyGuarded folds a computed delta into the stored view with panics
// converted to errors. On error the caller rolls the view back.
func (m *Maintainer) applyGuarded(v *View, delta []storage.Row, sign int64) error {
	return guard(func() error { return m.apply(v, delta, sign) })
}

// recomputeInPlace is the self-join maintenance path: rebuild the view from
// the post-change database, recording the outcome in rep and the lifecycle.
// A failed recompute rolls the view back to its committed contents.
func (m *Maintainer) recomputeInPlace(v *View, rep *MaintenanceError) {
	if st, _ := m.ViewState(v.Name); st == Quarantined {
		rep.Skipped = append(rep.Skipped, v.Name)
		return
	}
	if err := guard(func() error { return m.recompute(v) }); err != nil {
		m.db.RollbackView(v.Name)
		m.failView(v.Name, err)
		rep.Failed = append(rep.Failed, ViewError{v.Name, err})
		return
	}
	if st, _ := m.ViewState(v.Name); st != Fresh {
		_, notify := m.lc.transition(v.Name, Fresh, nil)
		notify()
	}
	rep.Updated = append(rep.Updated, v.Name)
}

// recompute rebuilds a view from scratch (self-join fallback and Repair).
func (m *Maintainer) recompute(v *View) error {
	if err := m.faults.Maybe(faults.SiteMaintainRecompute); err != nil {
		return fmt.Errorf("maintain: recompute %s: %w", v.Name, err)
	}
	_, err := exec.Materialize(m.db, v.Name, v.Def)
	return err
}

// apply merges delta rows into the stored view. sign is +1 for inserts and
// -1 for deletes.
func (m *Maintainer) apply(v *View, delta []storage.Row, sign int64) error {
	if err := m.faults.Maybe(faults.SiteMaintainApply); err != nil {
		return fmt.Errorf("maintain: apply to %s: %w", v.Name, err)
	}
	mv := m.db.View(v.Name)
	if mv == nil {
		return fmt.Errorf("maintain: view %s not materialized", v.Name)
	}
	if !v.isAgg {
		if sign > 0 {
			mv.Append(delta)
			return mv.RebuildIndexes()
		}
		if err := bagSubtract(mv, delta, v.Name); err != nil {
			return err
		}
		return mv.RebuildIndexes()
	}
	if err := m.mergeAgg(v, mv, delta, sign); err != nil {
		return err
	}
	return mv.RebuildIndexes()
}

// appendRowKey appends the composite group/row key of the given columns to
// buf — Value.AppendKey bytes joined by 0x1f. Callers reuse buf across rows
// and look maps up with string(buf), which Go performs without allocating,
// so keying a stored view's rows costs no per-column string garbage.
func appendRowKey(buf []byte, r storage.Row, cols []int) []byte {
	for _, c := range cols {
		buf = r[c].AppendKey(buf)
		buf = append(buf, '\x1f')
	}
	return buf
}

// bagSubtract removes one stored occurrence per delta row (bag semantics).
func bagSubtract(mv *storage.MaterializedView, delta []storage.Row, name string) error {
	toRemove := map[string]int{}
	width := mv.NumCols
	cols := make([]int, width)
	for i := range cols {
		cols[i] = i
	}
	var buf []byte
	for _, d := range delta {
		buf = appendRowKey(buf[:0], d, cols)
		toRemove[string(buf)]++
	}
	st := mv.Store()
	n := st.Len()
	drop := make([]bool, n)
	for i := 0; i < n; i++ {
		buf = st.AppendRowKey(buf[:0], i, cols)
		if c, ok := toRemove[string(buf)]; ok && c > 0 {
			toRemove[string(buf)] = c - 1
			drop[i] = true
		}
	}
	for k, c := range toRemove {
		if c > 0 {
			return fmt.Errorf("maintain: view %s: delta removed %d unmatched row(s) (key %q)", name, c, k)
		}
	}
	mv.Compact(func(i int) bool { return !drop[i] })
	return nil
}

// mergeAgg folds the delta's groups into the stored groups: counts and sums
// add (or subtract); groups reaching count zero are removed — the §2
// incremental-deletion rule that COUNT_BIG exists for.
func (m *Maintainer) mergeAgg(v *View, mv *storage.MaterializedView, delta []storage.Row, sign int64) error {
	if err := m.faults.Maybe(faults.SiteMaintainMergeAgg); err != nil {
		return fmt.Errorf("maintain: merge into %s: %w", v.Name, err)
	}
	st := mv.Store()
	n := st.Len()
	index := make(map[string]int, n)
	var buf []byte
	for i := 0; i < n; i++ {
		buf = st.AppendRowKey(buf[:0], i, v.keyPos)
		index[string(buf)] = i
	}
	removed := map[int]bool{}
	for _, d := range delta {
		buf = appendRowKey(buf[:0], d, v.keyPos)
		k := string(buf)
		i, ok := index[k]
		if !ok {
			if sign < 0 {
				return fmt.Errorf("maintain: view %s: delete delta for unknown group", v.Name)
			}
			mv.Append([]storage.Row{d})
			index[k] = mv.NumRows() - 1
			continue
		}
		// RowAt materializes a fresh row, so mutating it before SetRow never
		// aliases stored data.
		row := st.RowAt(i)
		newCnt := row[v.cntPos].Int() + sign*d[v.cntPos].Int()
		if newCnt < 0 {
			return fmt.Errorf("maintain: view %s: group count went negative", v.Name)
		}
		if newCnt == 0 {
			removed[i] = true
			delete(index, k)
			continue
		}
		row[v.cntPos] = sqlvalue.NewInt(newCnt)
		for _, sp := range v.sumPos {
			merged, err := mergeSum(row[sp], d[sp], sign)
			if err != nil {
				return fmt.Errorf("maintain: view %s: %w", v.Name, err)
			}
			row[sp] = merged
		}
		mv.SetRow(i, row)
	}
	if len(removed) > 0 {
		mv.Compact(func(i int) bool { return !removed[i] })
	}
	return nil
}

// mergeSum combines a stored SUM with a delta SUM. SQL SUM ignores NULLs, so
// a NULL delta leaves the stored value; subtracting from a group whose
// remaining rows are all-NULL cannot be detected without per-group non-null
// counts, so this implementation follows SQL Server's restriction in spirit:
// the workloads here have NOT NULL sum arguments.
func mergeSum(stored, delta sqlvalue.Value, sign int64) (sqlvalue.Value, error) {
	if delta.IsNull() {
		return stored, nil
	}
	if stored.IsNull() {
		if sign > 0 {
			return delta, nil
		}
		return sqlvalue.Null, fmt.Errorf("subtracting from NULL sum")
	}
	if sign > 0 {
		return sqlvalue.Add(stored, delta)
	}
	return sqlvalue.Sub(stored, delta)
}
