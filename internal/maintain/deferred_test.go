package maintain_test

import (
	"testing"

	"matview/internal/faults"
	"matview/internal/maintain"
	"matview/internal/sqlparser"
	"matview/internal/storage"
	"matview/internal/tpch"
)

func deferredFixture(t *testing.T) (*storage.Database, *maintain.Maintainer, *maintain.View) {
	t.Helper()
	db, err := tpch.NewDatabase(0.001, 7)
	if err != nil {
		t.Fatal(err)
	}
	m := maintain.New(db)
	def, err := sqlparser.ParseQuery(db.Catalog,
		`select o_custkey, count_big(*) as cnt, sum(o_totalprice) as total
		 from orders group by o_custkey`)
	if err != nil {
		t.Fatal(err)
	}
	v, err := m.RegisterDeferred("def_oc", def)
	if err != nil {
		t.Fatal(err)
	}
	return db, m, v
}

// TestDeferredLifecycle walks the happy path: Rebuilding on registration
// (no stored rows, DML skips it), Fresh with correct contents after
// Build+Install.
func TestDeferredLifecycle(t *testing.T) {
	db, m, v := deferredFixture(t)

	if st, ok := m.ViewState("def_oc"); !ok || st != maintain.Rebuilding {
		t.Fatalf("state after RegisterDeferred = %v, want Rebuilding", st)
	}
	if db.View("def_oc") != nil {
		t.Fatal("deferred view has stored rows before install")
	}

	// DML while Rebuilding: the base write lands, the half-built view is
	// skipped (nothing to maintain), and the statement succeeds.
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 999901, 42, 1234.5)}); err != nil {
		t.Fatalf("insert while rebuilding: %v", err)
	}
	if st, _ := m.ViewState("def_oc"); st != maintain.Rebuilding {
		t.Fatalf("state after DML = %v, want still Rebuilding", st)
	}

	rows, err := m.BuildDeferred(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallDeferred(v, rows); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.ViewState("def_oc"); st != maintain.Fresh {
		t.Fatalf("state after install = %v, want Fresh", st)
	}
	// The build ran after the insert, so contents include it and match a
	// fresh recompute exactly.
	checkAgainstRecompute(t, db, v)

	// Now that it is Fresh, incremental maintenance covers it like any
	// registered view.
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 999902, 42, 99.5)}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)
}

// TestDeferredBuildFault: a fault during the deferred build surfaces as an
// error; FailDeferred quarantines the view and counts it.
func TestDeferredBuildFault(t *testing.T) {
	_, m, v := deferredFixture(t)
	inj := faults.New(3)
	inj.Add(faults.Rule{Site: faults.SiteMaintainRecompute, Rate: 1, Limit: 1})
	m.SetFaultInjector(inj)

	if _, err := m.BuildDeferred(v); err == nil {
		t.Fatal("faulted build reported success")
	} else {
		m.FailDeferred("def_oc", err)
	}
	if st, _ := m.ViewState("def_oc"); st != maintain.Quarantined {
		t.Fatalf("state after failed build = %v, want Quarantined", st)
	}
	if got := m.Stats().Quarantines; got != 1 {
		t.Fatalf("quarantines = %d, want 1", got)
	}

	// The clean retry path: the injector is spent, rebuild and install.
	rows, err := m.BuildDeferred(v)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.InstallDeferred(v, rows); err != nil {
		t.Fatal(err)
	}
	if st, _ := m.ViewState("def_oc"); st != maintain.Fresh {
		t.Fatalf("state after retry = %v, want Fresh", st)
	}
}

// TestDeferredBuildPanicContained: a panic inside the build is converted to
// an error by the guard, not propagated.
func TestDeferredBuildPanicContained(t *testing.T) {
	_, m, v := deferredFixture(t)
	inj := faults.New(4)
	inj.Add(faults.Rule{Site: faults.SiteMaintainRecompute, Rate: 1, Limit: 1, Panic: true})
	m.SetFaultInjector(inj)
	if _, err := m.BuildDeferred(v); err == nil {
		t.Fatal("panicking build reported success")
	}
}

// TestDeferredDuplicateName: deferred registration respects the namespace.
func TestDeferredDuplicateName(t *testing.T) {
	db, m, _ := deferredFixture(t)
	def, err := sqlparser.ParseQuery(db.Catalog,
		"select o_custkey, count_big(*) as cnt from orders group by o_custkey")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.RegisterDeferred("def_oc", def); err == nil {
		t.Fatal("duplicate deferred name accepted")
	}
}

// TestDeferredDropWhileRebuilding: a deferred view can be dropped before it
// is ever installed (the controller's error path) without leaving ledger
// residue.
func TestDeferredDropWhileRebuilding(t *testing.T) {
	db, m, _ := deferredFixture(t)
	if ok, err := m.Drop("def_oc"); !ok || err != nil {
		t.Fatalf("drop of deferred view failed: %v %v", ok, err)
	}
	if _, ok := m.ViewState("def_oc"); ok {
		t.Fatal("dropped view still in lifecycle ledger")
	}
	if db.View("def_oc") != nil {
		t.Fatal("dropped view left rows behind")
	}
}
