package maintain

import (
	"fmt"

	"matview/internal/exec"
	"matview/internal/faults"
	"matview/internal/spjg"
	"matview/internal/storage"
)

// Deferred registration is the autopilot's create path: the view enters the
// ledger as Rebuilding with no stored rows, its contents are computed
// read-only (concurrently with query traffic), and the rows are installed in
// a separate step under the caller's exclusive lock. Until installation the
// view is invisible to the optimizer (it is registered there only after
// InstallDeferred) and skipped by Insert/Delete (non-Fresh views are never
// delta-maintained), so traffic can never match or read a half-built view.

// RegisterDeferred starts maintaining a view without materializing it. The
// view enters the lifecycle as Rebuilding; call BuildDeferred and then
// InstallDeferred to bring it Fresh, or FailDeferred to quarantine it.
// Like Register, it must be externally serialized with other maintenance.
func (m *Maintainer) RegisterDeferred(name string, def *spjg.Query) (*View, error) {
	if err := def.ValidateAsView(); err != nil {
		return nil, err
	}
	for _, v := range m.views {
		if v.Name == name {
			return nil, fmt.Errorf("maintain: duplicate view %q", name)
		}
	}
	v := &View{Name: name, Def: def, isAgg: def.IsAggregate(), cntPos: -1}
	if v.isAgg {
		for i, o := range def.Outputs {
			switch {
			case o.Expr != nil:
				v.keyPos = append(v.keyPos, i)
			case o.Agg != nil && o.Agg.Kind == spjg.AggCountStar:
				v.cntPos = i
			case o.Agg != nil && o.Agg.Kind == spjg.AggSum:
				v.sumPos = append(v.sumPos, i)
				v.sumArgs = append(v.sumArgs, i)
			default:
				return nil, fmt.Errorf("maintain: view %s: unsupported aggregate", name)
			}
		}
		if v.cntPos < 0 {
			return nil, fmt.Errorf("maintain: view %s lacks COUNT_BIG(*)", name)
		}
	}
	m.views = append(m.views, v)
	m.lc.registerState(name, Rebuilding)
	return v, nil
}

// BuildDeferred computes the view's rows without touching storage. It runs
// against a pinned snapshot of the committed epoch, so it never observes
// concurrent DML mid-statement and callers may run it under a shared lock
// concurrently with query traffic; the rows are only valid for installation
// while the database has not changed since (the server checks its data
// epoch). Panics become errors, and the recompute fault site fires here so
// chaos suites can break builds mid-flight.
func (m *Maintainer) BuildDeferred(v *View) (rows []storage.Row, err error) {
	err = guard(func() error {
		if ferr := m.faults.Maybe(faults.SiteMaintainRecompute); ferr != nil {
			return fmt.Errorf("maintain: deferred build of %s: %w", v.Name, ferr)
		}
		snap := m.db.Snapshot()
		defer snap.Release()
		var rerr error
		rows, rerr = exec.RunQuery(snap, v.Def)
		return rerr
	})
	if err != nil {
		return nil, err
	}
	return rows, nil
}

// InstallDeferred stores the built rows and brings the view Fresh. The
// caller must hold its exclusive lock (PutView swaps storage state) and must
// have verified the rows are not stale.
func (m *Maintainer) InstallDeferred(v *View, rows []storage.Row) error {
	return guard(func() error {
		m.db.PutView(v.Name, len(v.Def.Outputs), rows)
		// One atomic publish: the view appears in the committed epoch fully
		// built, never partially installed. A commit failure drops the
		// never-committed rows again; the caller quarantines the view.
		if _, err := m.db.CommitDurable(); err != nil {
			m.db.RollbackView(v.Name)
			return fmt.Errorf("maintain: commit of deferred view %s failed: %w", v.Name, err)
		}
		_, notify := m.lc.transition(v.Name, Fresh, nil)
		notify()
		return nil
	})
}

// FailDeferred quarantines a view whose deferred build failed: it stays
// registered (and visible on /healthz as quarantined) but has no stored
// rows and is never matched, until an operator or the controller drops it.
func (m *Maintainer) FailDeferred(name string, cause error) {
	m.lc.mu.Lock()
	m.lc.stats.Quarantines++
	m.lc.mu.Unlock()
	_, notify := m.lc.transition(name, Quarantined, cause)
	notify()
}
