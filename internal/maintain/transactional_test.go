package maintain_test

import (
	"encoding/json"
	"errors"
	"testing"

	"matview/internal/exec"
	"matview/internal/faults"
	"matview/internal/maintain"
	"matview/internal/storage"
)

// snapViewRows serializes a view's full contents as read through the given
// reader (live head or pinned snapshot) with the reference evaluator, for
// byte-level comparison.
func snapViewRows(t *testing.T, r storage.Reader, view string, ncols int) string {
	t.Helper()
	rows, err := exec.RunReference(r, &exec.ViewScan{View: view, NCols: ncols})
	if err != nil {
		t.Fatal(err)
	}
	out := make([][]string, len(rows))
	for i, row := range rows {
		out[i] = make([]string, len(row))
		for j, v := range row {
			out[i][j] = v.String()
		}
	}
	b, err := json.Marshal(out)
	if err != nil {
		t.Fatal(err)
	}
	return string(b)
}

// TestMaintenanceIsSnapshotTransactional is the tentpole invariant: view
// maintenance is a snapshot-to-snapshot commit. A statement computed against
// epoch N publishes as epoch N+1; a fault during a view apply leaves readers
// pinned on epoch N byte-identical to what they saw before the statement,
// and a fault during the base write leaves the epoch itself unchanged (the
// whole statement rolls back).
func TestMaintenanceIsSnapshotTransactional(t *testing.T) {
	db, m, vs, va := newLifecycleFixture(t, 33)

	snap := db.Snapshot()
	defer snap.Release()
	epoch0 := snap.Epoch()
	spjBefore := snapViewRows(t, snap, vs.Name, len(vs.Def.Outputs))
	aggBefore := snapViewRows(t, snap, va.Name, len(va.Def.Outputs))
	ordersBefore := db.Table("orders").NumRows()

	// 1. View-apply failure: the base row commits (epoch advances), the
	// failing view is rolled back to its epoch-N contents — consistent but
	// stale, never torn — and the pinned snapshot is untouched.
	inj := faults.New(7)
	inj.Add(faults.Rule{Site: faults.SiteMaintainApply, Rate: 1, Limit: 1})
	m.SetFaultInjector(inj)
	db.SetFaultInjector(inj)
	err := m.Insert("orders", []storage.Row{newOrderRow(db, 9_000_001, 3, 500_000)})
	var me *maintain.MaintenanceError
	if err == nil {
		t.Fatal("faulted insert succeeded")
	}
	if !errors.As(err, &me) || me.Base != nil {
		t.Fatalf("want view-apply MaintenanceError with nil Base, got %v", err)
	}
	if got := db.Epoch(); got != epoch0+1 {
		t.Fatalf("epoch after applied-with-stale-view statement = %d, want %d", got, epoch0+1)
	}
	if got := snapViewRows(t, snap, vs.Name, len(vs.Def.Outputs)); got != spjBefore {
		t.Fatalf("pinned snapshot's %s changed under maintenance failure", vs.Name)
	}
	if got := snapViewRows(t, snap, va.Name, len(va.Def.Outputs)); got != aggBefore {
		t.Fatalf("pinned snapshot's %s changed under maintenance failure", va.Name)
	}
	if got := snap.TableData("orders").NumRows(); got != ordersBefore {
		t.Fatalf("pinned snapshot's orders grew: %d, want %d", got, ordersBefore)
	}
	// The failing view's HEAD content equals its committed epoch-N content:
	// rolled back whole, not torn mid-apply.
	if got := snapViewRows(t, db, vs.Name, len(vs.Def.Outputs)); got != spjBefore {
		t.Fatalf("stale view's head content is torn")
	}
	wantState(t, m, vs.Name, maintain.Stale)

	// 2. Base-write failure: the entire statement aborts; the epoch does not
	// advance and no view (not even the healthy one) is touched.
	inj.Add(faults.Rule{Site: faults.SiteStorageInsert, Rate: 1, Limit: 1})
	epochMid := db.Epoch()
	aggMid := snapViewRows(t, db, va.Name, len(va.Def.Outputs))
	err = m.Insert("orders", []storage.Row{newOrderRow(db, 9_000_002, 4, 600_000)})
	if !errors.As(err, &me) || me.Base == nil {
		t.Fatalf("want base MaintenanceError, got %v", err)
	}
	if got := db.Epoch(); got != epochMid {
		t.Fatalf("aborted statement advanced the epoch: %d -> %d", epochMid, got)
	}
	if got := snapViewRows(t, db, va.Name, len(va.Def.Outputs)); got != aggMid {
		t.Fatal("aborted statement touched a view")
	}

	// 3. Success: compute at snapshot N, publish as N+1, and only then do
	// fresh snapshots observe the statement.
	inj.SetEnabled(false)
	preSnap := db.Snapshot()
	defer preSnap.Release()
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 9_000_003, 5, 700_000)}); err != nil {
		t.Fatalf("clean insert: %v", err)
	}
	if got := db.Epoch(); got != preSnap.Epoch()+1 {
		t.Fatalf("epoch after clean insert = %d, want %d", got, preSnap.Epoch()+1)
	}
	if got := preSnap.TableData("orders").NumRows(); got != ordersBefore+1 {
		t.Fatalf("pre-statement snapshot rows = %d, want %d", got, ordersBefore+1)
	}
	post := db.Snapshot()
	defer post.Release()
	if got := post.TableData("orders").NumRows(); got != ordersBefore+2 {
		t.Fatalf("post-statement snapshot rows = %d, want %d", got, ordersBefore+2)
	}
	checkAgainstRecompute(t, db, va)

	// And the very first snapshot still reads epoch N, byte-identical.
	if got := snapViewRows(t, snap, va.Name, len(va.Def.Outputs)); got != aggBefore {
		t.Fatal("original snapshot drifted across the whole sequence")
	}
}
