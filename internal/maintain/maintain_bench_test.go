package maintain_test

import (
	"fmt"
	"sync"
	"testing"

	"matview/internal/maintain"
	"matview/internal/sqlparser"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
	"matview/internal/tpch"
)

var maintBench struct {
	once sync.Once
	db   *storage.Database
	m    *maintain.Maintainer
	rows []storage.Row
	err  error
}

// BenchmarkMaintainInsertDelta measures one incremental-maintenance round
// trip on the hot DML path: insert a 100-row lineitem batch (delta query +
// merge into two aggregation views), then delete it again so the database
// returns to its initial state every iteration.
func BenchmarkMaintainInsertDelta(b *testing.B) {
	maintBench.once.Do(func() {
		db, err := tpch.NewDatabase(0.01, 11)
		if err != nil {
			maintBench.err = err
			return
		}
		m := maintain.New(db)
		for _, v := range []struct{ name, sql string }{
			{"b_pq", `select l_partkey, count_big(*) as cnt, sum(l_quantity) as qty
				from lineitem group by l_partkey`},
			{"b_ps", `select l_suppkey, count_big(*) as cnt, sum(l_extendedprice) as total
				from lineitem group by l_suppkey`},
		} {
			def, err := sqlparser.ParseQuery(db.Catalog, v.sql)
			if err != nil {
				maintBench.err = err
				return
			}
			if _, err := m.Register(v.name, def); err != nil {
				maintBench.err = err
				return
			}
		}
		// A fresh batch keyed far outside the generated domain so the delete
		// below removes exactly these rows.
		const marker = 99_000_000
		rows := make([]storage.Row, 100)
		for i := range rows {
			rows[i] = lineitemRow(int64(marker+i%7), int64(i))
		}
		maintBench.db, maintBench.m, maintBench.rows = db, m, rows
	})
	if maintBench.err != nil {
		b.Fatal(maintBench.err)
	}
	m, rows := maintBench.m, maintBench.rows
	isMarker := func(r storage.Row) bool { return r[tpch.LPartkey].Int() >= 99_000_000 }
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := m.Insert("lineitem", rows); err != nil {
			b.Fatal(err)
		}
		if n, err := m.Delete("lineitem", isMarker); err != nil || n != len(rows) {
			b.Fatalf("delete: n=%d err=%v", n, err)
		}
	}
}

func lineitemRow(partkey, i int64) storage.Row {
	return storage.Row{
		sqlvalue.NewInt(1 + i*4),            // l_orderkey
		sqlvalue.NewInt(partkey),            // l_partkey
		sqlvalue.NewInt(1 + i%100),          // l_suppkey
		sqlvalue.NewInt(1 + i%7),            // l_linenumber
		sqlvalue.NewFloat(float64(1 + i%50)),// l_quantity
		sqlvalue.NewFloat(1000 + float64(i)),// l_extendedprice
		sqlvalue.NewFloat(0.05),             // l_discount
		sqlvalue.NewFloat(0.02),             // l_tax
		sqlvalue.NewString("N"),             // l_returnflag
		sqlvalue.NewString("O"),             // l_linestatus
		sqlvalue.NewDateYMD(1995, 5, 5),     // l_shipdate
		sqlvalue.NewDateYMD(1995, 5, 15),    // l_commitdate
		sqlvalue.NewDateYMD(1995, 5, 25),    // l_receiptdate
		sqlvalue.NewString("NONE"),          // l_shipinstruct
		sqlvalue.NewString("MAIL"),          // l_shipmode
		sqlvalue.NewString(fmt.Sprintf("bench %d", i)), // l_comment
	}
}
