package maintain_test

import (
	"fmt"
	"math/rand"
	"testing"

	"matview/internal/exec"
	"matview/internal/expr"
	"matview/internal/maintain"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
	"matview/internal/tpch"
)

// checkAgainstRecompute asserts a maintained view equals a fresh evaluation
// of its definition.
func checkAgainstRecompute(t *testing.T, db *storage.Database, v *maintain.View) {
	t.Helper()
	fresh, err := exec.RunQuery(db, v.Def)
	if err != nil {
		t.Fatal(err)
	}
	stored := db.View(v.Name)
	if stored == nil {
		t.Fatalf("view %s missing", v.Name)
	}
	if !exec.SameRows(stored.Rows(), fresh) {
		t.Fatalf("view %s diverged: stored %d rows, recompute %d rows",
			v.Name, stored.NumRows(), len(fresh))
	}
}

func newOrderRow(db *storage.Database, key, cust int64, price float64) storage.Row {
	return storage.Row{
		sqlvalue.NewInt(key),
		sqlvalue.NewInt(cust),
		sqlvalue.NewString("O"),
		sqlvalue.NewFloat(price),
		sqlvalue.NewDateYMD(1995, 6, 1),
		sqlvalue.NewString("3-MEDIUM"),
		sqlvalue.NewString("Clerk#000000001"),
		sqlvalue.NewInt(0),
		sqlvalue.NewString("maintained row"),
	}
}

func TestSPJViewMaintenance(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 11)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	def := &spjg.Query{
		Tables: []spjg.TableRef{{Table: cat.Table("orders")}},
		Where:  expr.NewCmp(expr.GE, expr.Col(0, tpch.OTotalprice), expr.CInt(100000)),
		Outputs: []spjg.OutputColumn{
			{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
			{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
			{Name: "o_totalprice", Expr: expr.Col(0, tpch.OTotalprice)},
		},
	}
	v, err := m.Register("big_orders", def)
	if err != nil {
		t.Fatal(err)
	}
	before := db.View("big_orders").RowCount()

	// Insert: one row above the threshold, one below.
	err = m.Insert("orders", []storage.Row{
		newOrderRow(db, 9_000_001, 1, 250_000),
		newOrderRow(db, 9_000_002, 1, 50_000),
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := db.View("big_orders").RowCount(); got != before+1 {
		t.Fatalf("after insert: %d rows, want %d", got, before+1)
	}
	checkAgainstRecompute(t, db, v)

	// Delete the inserted qualifying row.
	n, err := m.Delete("orders", func(r storage.Row) bool {
		return r[tpch.OOrderkey].Int() >= 9_000_001
	})
	if err != nil || n != 2 {
		t.Fatalf("deleted %d (%v), want 2", n, err)
	}
	if got := db.View("big_orders").RowCount(); got != before {
		t.Fatalf("after delete: %d rows, want %d", got, before)
	}
	checkAgainstRecompute(t, db, v)
}

func TestAggViewMaintenanceCountBig(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 12)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	def := &spjg.Query{
		Tables:  []spjg.TableRef{{Table: cat.Table("orders")}},
		GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
		Outputs: []spjg.OutputColumn{
			{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
			{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
			{Name: "total", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.OTotalprice)}},
		},
	}
	v, err := m.Register("cust_totals", def)
	if err != nil {
		t.Fatal(err)
	}
	groupsBefore := db.View("cust_totals").RowCount()

	// Insert three orders for a brand-new customer key (group birth) and two
	// for an existing one (group update).
	const freshCust = 900_001
	rows := []storage.Row{
		newOrderRow(db, 9_100_001, freshCust, 1000),
		newOrderRow(db, 9_100_002, freshCust, 2000),
		newOrderRow(db, 9_100_003, freshCust, 3000),
		newOrderRow(db, 9_100_004, 1, 500),
		newOrderRow(db, 9_100_005, 1, 700),
	}
	if err := m.Insert("orders", rows); err != nil {
		t.Fatal(err)
	}
	if got := db.View("cust_totals").RowCount(); got != groupsBefore+1 {
		t.Fatalf("groups after insert = %d, want %d", got, groupsBefore+1)
	}
	checkAgainstRecompute(t, db, v)
	// The new group's count and sum are exact.
	var fresh storage.Row
	for _, r := range db.View("cust_totals").Rows() {
		if r[0].Int() == freshCust {
			fresh = r
			break
		}
	}
	if fresh == nil || fresh[1].Int() != 3 || fresh[2].Float() != 6000 {
		t.Fatalf("fresh group = %v", fresh)
	}

	// Delete two of the three fresh orders: count drops to 1.
	if _, err := m.Delete("orders", func(r storage.Row) bool {
		k := r[tpch.OOrderkey].Int()
		return k == 9_100_001 || k == 9_100_002
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)

	// Delete the last fresh order: COUNT_BIG reaches zero and the group row
	// must disappear — the §2 incremental-deletion rule.
	if _, err := m.Delete("orders", func(r storage.Row) bool {
		return r[tpch.OOrderkey].Int() == 9_100_003
	}); err != nil {
		t.Fatal(err)
	}
	for _, r := range db.View("cust_totals").Rows() {
		if r[0].Int() == freshCust {
			t.Fatal("empty group not removed when count reached zero")
		}
	}
	if got := db.View("cust_totals").RowCount(); got != groupsBefore {
		t.Fatalf("groups after full delete = %d, want %d", got, groupsBefore)
	}
	checkAgainstRecompute(t, db, v)
}

func TestJoinViewMaintenance(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 13)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	def := &spjg.Query{
		Tables: []spjg.TableRef{
			{Table: cat.Table("lineitem")},
			{Table: cat.Table("orders")},
		},
		Where:   expr.Eq(expr.Col(0, tpch.LOrderkey), expr.Col(1, tpch.OOrderkey)),
		GroupBy: []expr.Expr{expr.Col(1, tpch.OCustkey)},
		Outputs: []spjg.OutputColumn{
			{Name: "o_custkey", Expr: expr.Col(1, tpch.OCustkey)},
			{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
			{Name: "qty", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.LQuantity)}},
		},
	}
	v, err := m.Register("cust_rev", def)
	if err != nil {
		t.Fatal(err)
	}

	// Delete some lineitems of existing orders: the join delta updates the
	// affected customer groups only.
	if _, err := m.Delete("lineitem", func(r storage.Row) bool {
		return r[tpch.LPartkey].Int() <= 20
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)

	// Insert lineitems for an existing order.
	okey := db.Table("orders").RowAt(0)[tpch.OOrderkey]
	li := db.Table("lineitem").RowAt(0).Clone()
	li[tpch.LOrderkey] = okey
	li[tpch.LLinenumber] = sqlvalue.NewInt(7)
	if err := m.Insert("lineitem", []storage.Row{li}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)
}

func TestSelfJoinFallsBackToRecompute(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 14)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	// nation appears twice (self-join via region equality).
	def := &spjg.Query{
		Tables: []spjg.TableRef{
			{Table: cat.Table("nation"), Alias: "a"},
			{Table: cat.Table("nation"), Alias: "b"},
		},
		Where: expr.Eq(expr.Col(0, tpch.NRegionkey), expr.Col(1, tpch.NRegionkey)),
		Outputs: []spjg.OutputColumn{
			{Name: "a_name", Expr: expr.Col(0, tpch.NName)},
			{Name: "b_name", Expr: expr.Col(1, tpch.NName)},
		},
	}
	v, err := m.Register("nation_pairs", def)
	if err != nil {
		t.Fatal(err)
	}
	if err := m.Insert("nation", []storage.Row{{
		sqlvalue.NewInt(25), sqlvalue.NewString("NATION_25"),
		sqlvalue.NewInt(0), sqlvalue.NewString("new"),
	}}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)
	if _, err := m.Delete("nation", func(r storage.Row) bool {
		return r[tpch.NNationkey].Int() == 25
	}); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, v)
}

func TestMaintainErrors(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 15)
	if err != nil {
		t.Fatal(err)
	}
	m := maintain.New(db)
	if err := m.Insert("ghost", nil); err == nil {
		t.Error("insert into unknown table accepted")
	}
	if _, err := m.Delete("ghost", func(storage.Row) bool { return false }); err == nil {
		t.Error("delete from unknown table accepted")
	}
	// A view without COUNT_BIG is rejected at registration (ValidateAsView).
	bad := &spjg.Query{
		Tables:  []spjg.TableRef{{Table: db.Catalog.Table("orders")}},
		GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
		Outputs: []spjg.OutputColumn{
			{Name: "k", Expr: expr.Col(0, tpch.OCustkey)},
			{Name: "s", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.OTotalprice)}},
		},
	}
	if _, err := m.Register("bad", bad); err == nil {
		t.Error("aggregation view without COUNT_BIG registered")
	}
}

// TestMaintenanceRandomChurn applies random insert/delete batches and checks
// the maintained views never diverge from recomputation.
func TestMaintenanceRandomChurn(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 16)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	defs := []*spjg.Query{
		{
			Tables:  []spjg.TableRef{{Table: cat.Table("orders")}},
			GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
			Outputs: []spjg.OutputColumn{
				{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
				{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
				{Name: "total", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.OTotalprice)}},
			},
		},
		{
			Tables: []spjg.TableRef{{Table: cat.Table("orders")}},
			Where:  expr.NewCmp(expr.GE, expr.Col(0, tpch.OTotalprice), expr.CInt(200000)),
			Outputs: []spjg.OutputColumn{
				{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
				{Name: "o_totalprice", Expr: expr.Col(0, tpch.OTotalprice)},
			},
		},
	}
	var views []*maintain.View
	for i, def := range defs {
		v, err := m.Register(fmt.Sprintf("churn%d", i), def)
		if err != nil {
			t.Fatal(err)
		}
		views = append(views, v)
	}
	r := rand.New(rand.NewSource(88))
	nextKey := int64(10_000_000)
	for round := 0; round < 12; round++ {
		if r.Intn(2) == 0 {
			var batch []storage.Row
			for i := 0; i < 1+r.Intn(20); i++ {
				nextKey++
				batch = append(batch, newOrderRow(db, nextKey,
					1+r.Int63n(100), float64(1000+r.Intn(500000))))
			}
			if err := m.Insert("orders", batch); err != nil {
				t.Fatalf("round %d insert: %v", round, err)
			}
		} else {
			lo := r.Int63n(600_000)
			hi := lo + r.Int63n(50_000)
			if _, err := m.Delete("orders", func(row storage.Row) bool {
				k := row[tpch.OOrderkey].Int()
				return k >= lo && k <= hi
			}); err != nil {
				t.Fatalf("round %d delete: %v", round, err)
			}
		}
		for _, v := range views {
			checkAgainstRecompute(t, db, v)
		}
	}
}
