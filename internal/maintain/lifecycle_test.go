package maintain_test

import (
	"errors"
	"testing"
	"time"

	"matview/internal/expr"
	"matview/internal/faults"
	"matview/internal/maintain"
	"matview/internal/spjg"
	"matview/internal/sqlvalue"
	"matview/internal/storage"
	"matview/internal/tpch"
)

// newLifecycleFixture builds a maintainer over a tiny TPC-H database with
// two single-table views over orders (one SPJ, one aggregation), in
// registration order spj first.
func newLifecycleFixture(t *testing.T, seed int64) (*storage.Database, *maintain.Maintainer, *maintain.View, *maintain.View) {
	t.Helper()
	db, err := tpch.NewDatabase(0.001, seed)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	spj := &spjg.Query{
		Tables: []spjg.TableRef{{Table: cat.Table("orders")}},
		Where:  expr.NewCmp(expr.GE, expr.Col(0, tpch.OTotalprice), expr.CInt(100000)),
		Outputs: []spjg.OutputColumn{
			{Name: "o_orderkey", Expr: expr.Col(0, tpch.OOrderkey)},
			{Name: "o_totalprice", Expr: expr.Col(0, tpch.OTotalprice)},
		},
	}
	agg := &spjg.Query{
		Tables:  []spjg.TableRef{{Table: cat.Table("orders")}},
		GroupBy: []expr.Expr{expr.Col(0, tpch.OCustkey)},
		Outputs: []spjg.OutputColumn{
			{Name: "o_custkey", Expr: expr.Col(0, tpch.OCustkey)},
			{Name: "cnt", Agg: &spjg.Aggregate{Kind: spjg.AggCountStar}},
			{Name: "total", Agg: &spjg.Aggregate{Kind: spjg.AggSum, Arg: expr.Col(0, tpch.OTotalprice)}},
		},
	}
	vs, err := m.Register("lc_spj", spj)
	if err != nil {
		t.Fatal(err)
	}
	va, err := m.Register("lc_agg", agg)
	if err != nil {
		t.Fatal(err)
	}
	return db, m, vs, va
}

func wantState(t *testing.T, m *maintain.Maintainer, name string, want maintain.State) {
	t.Helper()
	got, ok := m.ViewState(name)
	if !ok {
		t.Fatalf("view %s has no lifecycle entry", name)
	}
	if got != want {
		t.Fatalf("view %s state = %v, want %v", name, got, want)
	}
}

func TestInsertPartialFailureIsolatesTheFailingView(t *testing.T) {
	db, m, vs, va := newLifecycleFixture(t, 21)

	var transitions []string
	m.SetStateListener(func(view string, from, to maintain.State) {
		transitions = append(transitions, view+":"+from.String()+">"+to.String())
	})

	// Fail exactly the first apply this statement performs — lc_spj, the
	// first registered view.
	inj := faults.New(3)
	inj.Add(faults.Rule{Site: faults.SiteMaintainApply, Rate: 1, Limit: 1})
	m.SetFaultInjector(inj)

	err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_000_001, 5, 300_000)})
	var me *maintain.MaintenanceError
	if !errors.As(err, &me) {
		t.Fatalf("Insert returned %T (%v), want *MaintenanceError", err, err)
	}
	if me.Op != "insert" || me.Table != "orders" || me.Base != nil {
		t.Fatalf("report header: %+v", me)
	}
	if len(me.Failed) != 1 || me.Failed[0].View != "lc_spj" || !faults.IsInjected(me.Failed[0].Err) {
		t.Fatalf("Failed = %v", me.Failed)
	}
	if len(me.Updated) != 1 || me.Updated[0] != "lc_agg" {
		t.Fatalf("Updated = %v", me.Updated)
	}
	if !faults.IsInjected(err) {
		t.Fatal("errors.As should reach the injected cause through Unwrap")
	}

	// The failure was recorded before Insert returned: lc_spj is Stale with
	// the cause retained, lc_agg stayed Fresh and correct.
	wantState(t, m, "lc_spj", maintain.Stale)
	wantState(t, m, "lc_agg", maintain.Fresh)
	if le := m.LastError("lc_spj"); !faults.IsInjected(le) {
		t.Fatalf("LastError = %v", le)
	}
	checkAgainstRecompute(t, db, va)
	if len(transitions) != 1 || transitions[0] != "lc_spj:fresh>stale" {
		t.Fatalf("transitions = %v", transitions)
	}

	// The next statement skips the stale view instead of corrupting it
	// further, and still maintains the healthy one — but reports no error.
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_000_002, 6, 400_000)}); err != nil {
		t.Fatalf("insert with a stale view errored: %v", err)
	}
	checkAgainstRecompute(t, db, va)

	// Repair rebuilds the stale view and re-announces freshness.
	rep := m.Repair()
	if len(rep.Repaired) != 1 || rep.Repaired[0] != "lc_spj" {
		t.Fatalf("repair report: %+v", rep)
	}
	wantState(t, m, "lc_spj", maintain.Fresh)
	checkAgainstRecompute(t, db, vs)
	last := transitions[len(transitions)-1]
	if last != "lc_spj:rebuilding>fresh" {
		t.Fatalf("final transition = %v", transitions)
	}

	st := m.Stats()
	if st.MaintenanceFailures != 1 || st.RepairSuccesses != 1 || st.RepairAttempts != 1 {
		t.Fatalf("stats: %+v", st)
	}
}

func TestBaseWriteFailureAbortsStatement(t *testing.T) {
	db, m, vs, va := newLifecycleFixture(t, 22)
	inj := faults.New(4)
	// First base-table row lands, the second blows up mid-batch.
	inj.Add(faults.Rule{Site: faults.SiteStorageInsert, Rate: 1, After: 1})
	m.SetFaultInjector(inj)
	db.SetFaultInjector(inj)

	before := db.Table("orders").NumRows()
	epochBefore := db.Epoch()
	err := m.Insert("orders", []storage.Row{
		newOrderRow(db, 8_100_001, 7, 150_000),
		newOrderRow(db, 8_100_002, 7, 150_000),
	})
	var me *maintain.MaintenanceError
	if !errors.As(err, &me) || me.Base == nil {
		t.Fatalf("want MaintenanceError with Base set, got %v", err)
	}
	if len(me.Updated) != 0 {
		t.Fatalf("aborted statement reported updated views: %+v", me)
	}
	// The statement aborted atomically: the partial batch was rolled back,
	// no view was touched, and the epoch did not advance.
	if got := db.Table("orders").NumRows(); got != before {
		t.Fatalf("orders rows = %d after aborted insert, want %d", got, before)
	}
	if got := db.Epoch(); got != epochBefore {
		t.Fatalf("epoch advanced to %d across an aborted statement, want %d", got, epochBefore)
	}
	wantState(t, m, "lc_spj", maintain.Fresh)
	wantState(t, m, "lc_agg", maintain.Fresh)
	checkAgainstRecompute(t, db, vs)
	checkAgainstRecompute(t, db, va)

	// With the fault disarmed the same statement applies cleanly.
	inj.SetEnabled(false)
	if err := m.Insert("orders", []storage.Row{
		newOrderRow(db, 8_100_001, 7, 150_000),
		newOrderRow(db, 8_100_002, 7, 150_000),
	}); err != nil {
		t.Fatalf("retry after rollback: %v", err)
	}
	if got := db.Table("orders").NumRows(); got != before+2 {
		t.Fatalf("orders rows = %d after retry, want %d", got, before+2)
	}
	checkAgainstRecompute(t, db, vs)
	checkAgainstRecompute(t, db, va)
}

func TestRepairBackoffThenQuarantine(t *testing.T) {
	db, m, _, _ := newLifecycleFixture(t, 23)
	now := time.Unix(1_000_000, 0)
	m.SetClock(func() time.Time { return now })
	m.SetRepairPolicy(maintain.RepairPolicy{
		MaxAttempts: 3,
		BackoffBase: time.Second,
		BackoffMax:  time.Minute,
		Jitter:      0, // deterministic schedule
	})

	inj := faults.New(5)
	inj.Add(faults.Rule{Site: faults.SiteMaintainMergeAgg, Rate: 1, Limit: 1})
	inj.Add(faults.Rule{Site: faults.SiteMaintainRecompute, Rate: 1})
	m.SetFaultInjector(inj)

	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_200_001, 9, 100)}); err == nil {
		t.Fatal("fault did not surface")
	}
	wantState(t, m, "lc_agg", maintain.Stale)

	// Attempt 1 fails; the view backs off.
	rep := m.Repair()
	if len(rep.Failed) != 1 || rep.Failed[0].View != "lc_agg" {
		t.Fatalf("attempt 1 report: %+v", rep)
	}
	// Before the backoff elapses the view only waits.
	rep = m.Repair()
	if len(rep.Waiting) != 1 || len(rep.Failed)+len(rep.Quarantined) != 0 {
		t.Fatalf("backoff not honored: %+v", rep)
	}

	// Attempt 2 after the backoff: fails again, deeper backoff.
	now = now.Add(2 * time.Second)
	rep = m.Repair()
	if len(rep.Failed) != 1 {
		t.Fatalf("attempt 2 report: %+v", rep)
	}
	// Attempt 3 exhausts the budget: quarantined.
	now = now.Add(time.Minute)
	rep = m.Repair()
	if len(rep.Quarantined) != 1 || rep.Quarantined[0] != "lc_agg" {
		t.Fatalf("attempt 3 report: %+v", rep)
	}
	wantState(t, m, "lc_agg", maintain.Quarantined)

	// Quarantine is terminal for the automatic loop...
	now = now.Add(time.Hour)
	if rep := m.Repair(); len(rep.Repaired)+len(rep.Failed)+len(rep.Waiting) != 0 {
		t.Fatalf("quarantined view re-entered repair: %+v", rep)
	}
	// ...DML skips it...
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_200_002, 9, 100)}); err != nil {
		t.Fatalf("insert with quarantined view errored: %v", err)
	}
	wantState(t, m, "lc_agg", maintain.Quarantined)
	// ...and reviving it takes an operator.
	if err := m.RepairView("lc_agg", false); err == nil {
		t.Fatal("quarantined repair without force succeeded")
	}
	inj.SetEnabled(false)
	if err := m.RepairView("lc_agg", true); err != nil {
		t.Fatalf("forced repair: %v", err)
	}
	wantState(t, m, "lc_agg", maintain.Fresh)

	st := m.Stats()
	if st.Quarantines != 1 || st.RepairFailures != 3 {
		t.Fatalf("stats: %+v", st)
	}
	if st.Degraded <= 0 {
		t.Fatalf("degraded time not accounted: %v", st.Degraded)
	}
}

func TestPanicDuringMaintenanceDegradesOneView(t *testing.T) {
	db, m, _, va := newLifecycleFixture(t, 24)
	inj := faults.New(6)
	inj.Add(faults.Rule{Site: faults.SiteMaintainMergeAgg, Rate: 1, Limit: 1, Panic: true})
	m.SetFaultInjector(inj)

	err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_300_001, 11, 100)})
	var me *maintain.MaintenanceError
	if !errors.As(err, &me) {
		t.Fatalf("panic was not converted to a MaintenanceError: %v", err)
	}
	if len(me.Failed) != 1 || me.Failed[0].View != "lc_agg" {
		t.Fatalf("Failed = %v", me.Failed)
	}
	wantState(t, m, "lc_agg", maintain.Stale)
	wantState(t, m, "lc_spj", maintain.Fresh)

	if rep := m.Repair(); len(rep.Repaired) != 1 {
		t.Fatalf("repair: %+v", rep)
	}
	checkAgainstRecompute(t, db, va)
}

// TestSelfJoinRecomputeLifecycle covers the recompute fallback directly: a
// fault during the post-insert recompute degrades the self-join view, and
// the next successful recompute (via DML, not Repair) heals it.
func TestSelfJoinRecomputeLifecycle(t *testing.T) {
	db, err := tpch.NewDatabase(0.001, 25)
	if err != nil {
		t.Fatal(err)
	}
	cat := db.Catalog
	m := maintain.New(db)
	def := &spjg.Query{
		Tables: []spjg.TableRef{
			{Table: cat.Table("nation"), Alias: "a"},
			{Table: cat.Table("nation"), Alias: "b"},
		},
		Where: expr.Eq(expr.Col(0, tpch.NRegionkey), expr.Col(1, tpch.NRegionkey)),
		Outputs: []spjg.OutputColumn{
			{Name: "a_name", Expr: expr.Col(0, tpch.NName)},
			{Name: "b_name", Expr: expr.Col(1, tpch.NName)},
		},
	}
	v, err := m.Register("lc_pairs", def)
	if err != nil {
		t.Fatal(err)
	}
	inj := faults.New(7)
	inj.Add(faults.Rule{Site: faults.SiteMaintainRecompute, Rate: 1, Limit: 1})
	m.SetFaultInjector(inj)

	row := storage.Row{
		sqlvalue.NewInt(30), sqlvalue.NewString("NATION_30"),
		sqlvalue.NewInt(1), sqlvalue.NewString("lifecycle"),
	}
	err = m.Insert("nation", []storage.Row{row})
	var me *maintain.MaintenanceError
	if !errors.As(err, &me) || len(me.Failed) != 1 || me.Failed[0].View != "lc_pairs" {
		t.Fatalf("recompute fault not reported: %v", err)
	}
	wantState(t, m, "lc_pairs", maintain.Stale)

	// The next insert recomputes from scratch anyway — the self-join path
	// heals the view without waiting for Repair.
	row2 := storage.Row{
		sqlvalue.NewInt(31), sqlvalue.NewString("NATION_31"),
		sqlvalue.NewInt(1), sqlvalue.NewString("lifecycle"),
	}
	if err := m.Insert("nation", []storage.Row{row2}); err != nil {
		t.Fatal(err)
	}
	wantState(t, m, "lc_pairs", maintain.Fresh)
	checkAgainstRecompute(t, db, v)
}

// TestDeleteToZeroRemovesGroups exercises the delete-to-zero aggregation
// path directly: several groups reach COUNT_BIG = 0 in one delta while a
// surviving group is decremented in place.
func TestDeleteToZeroRemovesGroups(t *testing.T) {
	db, m, _, va := newLifecycleFixture(t, 26)
	const custA, custB, custC = 910_001, 910_002, 910_003
	var batch []storage.Row
	key := int64(8_400_000)
	for _, cust := range []int64{custA, custA, custB, custC, custC, custC} {
		key++
		batch = append(batch, newOrderRow(db, key, cust, 1000))
	}
	if err := m.Insert("orders", batch); err != nil {
		t.Fatal(err)
	}
	checkAgainstRecompute(t, db, va)

	// Delete all of A and B, and two of C's three orders, in one statement.
	n, err := m.Delete("orders", func(r storage.Row) bool {
		k := r[tpch.OOrderkey].Int()
		return k > 8_400_000 && k <= 8_400_005
	})
	if err != nil || n != 5 {
		t.Fatalf("deleted %d (%v), want 5", n, err)
	}
	mv := db.View("lc_agg")
	var foundC bool
	for _, r := range mv.Rows() {
		switch r[0].Int() {
		case custA, custB:
			t.Fatalf("group %d survived delete-to-zero", r[0].Int())
		case custC:
			foundC = true
			if r[1].Int() != 1 || r[2].Float() != 1000 {
				t.Fatalf("group C = %v, want cnt 1 total 1000", r)
			}
		}
	}
	if !foundC {
		t.Fatal("surviving group C removed")
	}
	checkAgainstRecompute(t, db, va)
	wantState(t, m, "lc_agg", maintain.Fresh)
}

func TestDropClearsLifecycle(t *testing.T) {
	db, m, _, _ := newLifecycleFixture(t, 27)
	inj := faults.New(8)
	inj.Add(faults.Rule{Site: faults.SiteMaintainApply, Rate: 1})
	m.SetFaultInjector(inj)
	if err := m.Insert("orders", []storage.Row{newOrderRow(db, 8_500_001, 13, 200_000)}); err == nil {
		t.Fatal("fault did not surface")
	}
	if got := m.ViewsInState(maintain.Stale); len(got) != 2 {
		t.Fatalf("stale views = %v", got)
	}
	ok1, err1 := m.Drop("lc_spj")
	ok2, err2 := m.Drop("lc_agg")
	if !ok1 || !ok2 || err1 != nil || err2 != nil {
		t.Fatalf("drop failed: %v %v %v %v", ok1, err1, ok2, err2)
	}
	if got := m.ViewsInState(maintain.Stale); len(got) != 0 {
		t.Fatalf("lifecycle survived drop: %v", got)
	}
	if _, ok := m.ViewState("lc_spj"); ok {
		t.Fatal("dropped view still has a lifecycle entry")
	}
}
