package maintain

import (
	"fmt"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"time"

	"matview/internal/faults"
)

// State is a maintained view's health. The optimizer only matches Fresh
// views (a rewrite against a view is only valid while the view equals its
// definition); every other state means the stored rows are untrusted and
// queries must fall back to base-table plans.
//
// Transitions:
//
//	Fresh ──(maintenance failure)──▶ Stale ──(Repair)──▶ Rebuilding
//	Rebuilding ──(recompute ok)──▶ Fresh
//	Rebuilding ──(recompute fails)──▶ Stale (backoff) … ──▶ Quarantined
//	Quarantined ──(RepairView force)──▶ Rebuilding
type State int

const (
	// Fresh: the stored rows equal the definition; the view is matchable.
	Fresh State = iota
	// Stale: a maintenance step failed; contents are suspect until repaired.
	Stale
	// Rebuilding: a repair recompute is in progress.
	Rebuilding
	// Quarantined: repair failed repeatedly; the view is parked until an
	// operator forces a repair (RepairView with force) or drops it.
	Quarantined
)

func (s State) String() string {
	switch s {
	case Fresh:
		return "fresh"
	case Stale:
		return "stale"
	case Rebuilding:
		return "rebuilding"
	case Quarantined:
		return "quarantined"
	default:
		return fmt.Sprintf("state(%d)", int(s))
	}
}

// ViewError names one view's maintenance failure.
type ViewError struct {
	View string
	Err  error
}

func (e ViewError) Error() string { return e.View + ": " + e.Err.Error() }

// MaintenanceError reports exactly what a partially failed Insert or Delete
// did: which views were brought up to date, which failed (rolled back to
// their committed contents and now Stale), and which were skipped because
// they were already non-Fresh when the statement arrived. If Base is non-nil
// the base-table write itself failed and the whole statement was aborted:
// the table was rolled back to the committed epoch, no view was touched, and
// the epoch did not advance.
type MaintenanceError struct {
	Op    string // "insert" or "delete"
	Table string
	Base  error
	// Updated lists views whose deltas applied cleanly during this call.
	Updated []string
	// Failed lists views whose maintenance failed during this call.
	Failed []ViewError
	// Skipped lists views not attempted (non-Fresh at entry).
	Skipped []string
}

func (e *MaintenanceError) Error() string {
	var sb strings.Builder
	fmt.Fprintf(&sb, "maintain: %s on %s:", e.Op, e.Table)
	if e.Base != nil {
		fmt.Fprintf(&sb, " base write failed (%v);", e.Base)
	}
	if len(e.Failed) > 0 {
		parts := make([]string, len(e.Failed))
		for i, f := range e.Failed {
			parts[i] = f.Error()
		}
		fmt.Fprintf(&sb, " %d view(s) failed and are stale [%s];", len(e.Failed), strings.Join(parts, "; "))
	}
	fmt.Fprintf(&sb, " %d updated, %d skipped", len(e.Updated), len(e.Skipped))
	return sb.String()
}

// Unwrap exposes the underlying causes to errors.Is/As.
func (e *MaintenanceError) Unwrap() []error {
	var errs []error
	if e.Base != nil {
		errs = append(errs, e.Base)
	}
	for _, f := range e.Failed {
		errs = append(errs, f.Err)
	}
	return errs
}

// orNil returns the report as an error only when something actually failed;
// a clean statement (possibly with skipped non-Fresh views) returns nil.
func (e *MaintenanceError) orNil() error {
	if e.Base == nil && len(e.Failed) == 0 {
		return nil
	}
	return e
}

// RepairPolicy tunes the Stale → Fresh recovery loop.
type RepairPolicy struct {
	// MaxAttempts quarantines a view after this many consecutive failed
	// repair attempts.
	MaxAttempts int
	// BackoffBase is the delay after the first failed repair; it doubles per
	// consecutive failure up to BackoffMax.
	BackoffBase time.Duration
	BackoffMax  time.Duration
	// Jitter adds a random fraction in [0, Jitter) of the delay, decorrelating
	// repair retries across views.
	Jitter float64
}

// DefaultRepairPolicy matches the server defaults: five attempts, 50ms
// doubling to 5s, 50% jitter.
func DefaultRepairPolicy() RepairPolicy {
	return RepairPolicy{MaxAttempts: 5, BackoffBase: 50 * time.Millisecond, BackoffMax: 5 * time.Second, Jitter: 0.5}
}

// viewHealth is the per-view lifecycle record, guarded by Maintainer.stateMu.
type viewHealth struct {
	state       State
	lastErr     error
	attempts    int       // consecutive failed repair attempts
	nextAttempt time.Time // earliest next repair; zero = due immediately
}

// Stats snapshots lifecycle counters for /metrics.
type Stats struct {
	Fresh       int `json:"fresh"`
	Stale       int `json:"stale"`
	Rebuilding  int `json:"rebuilding"`
	Quarantined int `json:"quarantined"`

	// MaintenanceFailures counts per-view delta-application failures.
	MaintenanceFailures int64 `json:"maintenance_failures"`
	RepairAttempts      int64 `json:"repair_attempts"`
	RepairSuccesses     int64 `json:"repair_successes"`
	RepairFailures      int64 `json:"repair_failures"`
	Quarantines         int64 `json:"quarantines"`

	// Degraded is the cumulative time at least one view was non-Fresh.
	Degraded time.Duration `json:"-"`
}

// RepairReport summarizes one Repair pass.
type RepairReport struct {
	// Repaired views went Stale → Rebuilding → Fresh this pass.
	Repaired []string
	// Failed views' recompute failed; they are Stale again with backoff.
	Failed []ViewError
	// Quarantined views exhausted their repair attempts this pass.
	Quarantined []string
	// Waiting views are Stale but their backoff has not elapsed yet.
	Waiting []string
}

// lifecycle is the Maintainer's health ledger. Insert/Delete/Repair are
// externally serialized (as before), but states are read concurrently by
// health endpoints and the optimizer wiring, so the ledger has its own lock.
type lifecycle struct {
	mu       sync.RWMutex
	health   map[string]*viewHealth
	listener func(view string, from, to State)
	policy   RepairPolicy
	now      func() time.Time
	rng      *rand.Rand // jitter; guarded by mu

	stats         Stats // counter fields only; state counts derived on read
	nonFresh      int
	degradedSince time.Time
	degradedTotal time.Duration
}

func newLifecycle() *lifecycle {
	return &lifecycle{
		health: map[string]*viewHealth{},
		policy: DefaultRepairPolicy(),
		now:    time.Now,
		rng:    rand.New(rand.NewSource(1)),
	}
}

// SetRepairPolicy replaces the repair policy (zero fields fall back to the
// defaults).
func (m *Maintainer) SetRepairPolicy(p RepairPolicy) {
	def := DefaultRepairPolicy()
	if p.MaxAttempts <= 0 {
		p.MaxAttempts = def.MaxAttempts
	}
	if p.BackoffBase <= 0 {
		p.BackoffBase = def.BackoffBase
	}
	if p.BackoffMax <= 0 {
		p.BackoffMax = def.BackoffMax
	}
	m.lc.mu.Lock()
	defer m.lc.mu.Unlock()
	m.lc.policy = p
}

// SetStateListener installs fn, called (outside the ledger lock) after every
// state transition. The server wires this to the optimizer so non-Fresh
// views stop matching and the catalog epoch invalidates cached plans.
func (m *Maintainer) SetStateListener(fn func(view string, from, to State)) {
	m.lc.mu.Lock()
	defer m.lc.mu.Unlock()
	m.lc.listener = fn
}

// SetClock overrides the lifecycle clock (tests drive backoff schedules
// deterministically with it).
func (m *Maintainer) SetClock(now func() time.Time) {
	m.lc.mu.Lock()
	defer m.lc.mu.Unlock()
	m.lc.now = now
}

// SetFaultInjector arms fault injection on the maintainer's own sites
// (delta evaluation, delta application, aggregate merging, recompute).
// Storage sites are armed separately via Database.SetFaultInjector.
func (m *Maintainer) SetFaultInjector(in *faults.Injector) { m.faults = in }

// ViewState returns a view's lifecycle state; ok is false for unknown views.
func (m *Maintainer) ViewState(name string) (state State, ok bool) {
	m.lc.mu.RLock()
	defer m.lc.mu.RUnlock()
	h, ok := m.lc.health[name]
	if !ok {
		return Fresh, false
	}
	return h.state, true
}

// LastError returns the error that last degraded the view, or nil.
func (m *Maintainer) LastError(name string) error {
	m.lc.mu.RLock()
	defer m.lc.mu.RUnlock()
	if h, ok := m.lc.health[name]; ok {
		return h.lastErr
	}
	return nil
}

// ViewsInState returns the names of views currently in state, sorted.
func (m *Maintainer) ViewsInState(s State) []string {
	m.lc.mu.RLock()
	defer m.lc.mu.RUnlock()
	var out []string
	for name, h := range m.lc.health {
		if h.state == s {
			out = append(out, name)
		}
	}
	sort.Strings(out)
	return out
}

// Stats snapshots the lifecycle counters and current state census.
func (m *Maintainer) Stats() Stats {
	m.lc.mu.RLock()
	defer m.lc.mu.RUnlock()
	s := m.lc.stats
	for _, h := range m.lc.health {
		switch h.state {
		case Fresh:
			s.Fresh++
		case Stale:
			s.Stale++
		case Rebuilding:
			s.Rebuilding++
		case Quarantined:
			s.Quarantined++
		}
	}
	s.Degraded = m.lc.degradedTotal
	if m.lc.nonFresh > 0 {
		s.Degraded += m.lc.now().Sub(m.lc.degradedSince)
	}
	return s
}

// transition moves a view to state `to`, maintains the degraded clock, and
// returns the previous state plus the listener to invoke (lock-free).
func (lc *lifecycle) transition(name string, to State, cause error) (from State, notify func()) {
	lc.mu.Lock()
	h := lc.health[name]
	if h == nil {
		h = &viewHealth{}
		lc.health[name] = h
	}
	from = h.state
	h.state = to
	if cause != nil {
		h.lastErr = cause
	}
	if to == Fresh {
		h.lastErr = nil
		h.attempts = 0
		h.nextAttempt = time.Time{}
	}
	lc.accountTransition(from, to)
	listener := lc.listener
	lc.mu.Unlock()
	if listener != nil && from != to {
		return from, func() { listener(name, from, to) }
	}
	return from, func() {}
}

// accountTransition maintains the non-Fresh census and degraded stopwatch;
// callers hold lc.mu.
func (lc *lifecycle) accountTransition(from, to State) {
	if (from == Fresh) == (to == Fresh) {
		return
	}
	if from == Fresh {
		if lc.nonFresh == 0 {
			lc.degradedSince = lc.now()
		}
		lc.nonFresh++
		return
	}
	lc.nonFresh--
	if lc.nonFresh == 0 {
		lc.degradedTotal += lc.now().Sub(lc.degradedSince)
	}
}

// register initializes a Fresh ledger entry for a new view.
func (lc *lifecycle) register(name string) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.health[name] = &viewHealth{state: Fresh}
}

// registerState initializes a ledger entry in an arbitrary state (deferred
// registration starts views at Rebuilding), opening the degraded stopwatch
// if the state is non-Fresh.
func (lc *lifecycle) registerState(name string, st State) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	lc.health[name] = &viewHealth{state: st}
	lc.accountTransition(Fresh, st)
}

// drop removes a view from the ledger, closing its degraded window.
func (lc *lifecycle) drop(name string) {
	lc.mu.Lock()
	defer lc.mu.Unlock()
	if h, ok := lc.health[name]; ok {
		lc.accountTransition(h.state, Fresh)
		delete(lc.health, name)
	}
}

// failView marks a view Stale after a maintenance failure. Quarantined views
// stay quarantined (the failure is recorded); everything else becomes Stale
// and immediately due for repair.
func (m *Maintainer) failView(name string, err error) {
	m.lc.mu.Lock()
	h := m.lc.health[name]
	if h == nil {
		h = &viewHealth{}
		m.lc.health[name] = h
	}
	m.lc.stats.MaintenanceFailures++
	if h.state == Quarantined {
		h.lastErr = err
		m.lc.mu.Unlock()
		return
	}
	from := h.state
	h.state = Stale
	h.lastErr = err
	h.nextAttempt = m.lc.now() // due immediately; backoff starts on repair failure
	m.lc.accountTransition(from, Stale)
	listener := m.lc.listener
	m.lc.mu.Unlock()
	if listener != nil && from != Stale {
		listener(name, from, Stale)
	}
}

// repairFailed records a failed repair attempt: exponential backoff with
// jitter, and quarantine once the policy's attempt budget is spent. It
// reports whether the view was quarantined.
func (m *Maintainer) repairFailed(name string, err error) bool {
	m.lc.mu.Lock()
	h := m.lc.health[name]
	if h == nil {
		h = &viewHealth{}
		m.lc.health[name] = h
	}
	from := h.state
	h.attempts++
	h.lastErr = err
	m.lc.stats.RepairFailures++
	quarantined := h.attempts >= m.lc.policy.MaxAttempts
	var to State
	if quarantined {
		to = Quarantined
		m.lc.stats.Quarantines++
	} else {
		to = Stale
		delay := m.lc.policy.BackoffBase << (h.attempts - 1)
		if delay > m.lc.policy.BackoffMax || delay <= 0 {
			delay = m.lc.policy.BackoffMax
		}
		if j := m.lc.policy.Jitter; j > 0 {
			delay += time.Duration(m.lc.rng.Float64() * j * float64(delay))
		}
		h.nextAttempt = m.lc.now().Add(delay)
	}
	h.state = to
	m.lc.accountTransition(from, to)
	listener := m.lc.listener
	m.lc.mu.Unlock()
	if listener != nil && from != to {
		listener(name, from, to)
	}
	return quarantined
}

// Repair attempts to rebuild every Stale view whose backoff has elapsed.
// Like Insert and Delete it must be externally serialized with other
// maintenance (the server runs it under its exclusive lock); concurrent
// readers of the ledger (health endpoints, the optimizer wiring) are safe.
func (m *Maintainer) Repair() RepairReport {
	var rep RepairReport
	for _, v := range m.views {
		m.lc.mu.RLock()
		h := m.lc.health[v.Name]
		due := h != nil && h.state == Stale
		waiting := due && m.lc.now().Before(h.nextAttempt)
		m.lc.mu.RUnlock()
		if !due {
			continue
		}
		if waiting {
			rep.Waiting = append(rep.Waiting, v.Name)
			continue
		}
		if err := m.repairOne(v); err != nil {
			if quarantined := m.repairFailed(v.Name, err); quarantined {
				rep.Quarantined = append(rep.Quarantined, v.Name)
			} else {
				rep.Failed = append(rep.Failed, ViewError{v.Name, err})
			}
		} else {
			rep.Repaired = append(rep.Repaired, v.Name)
		}
	}
	return rep
}

// RepairView explicitly rebuilds one view regardless of backoff. Repairing a
// Quarantined view requires force, which also resets its attempt budget.
func (m *Maintainer) RepairView(name string, force bool) error {
	var v *View
	for _, w := range m.views {
		if w.Name == name {
			v = w
			break
		}
	}
	if v == nil {
		return fmt.Errorf("maintain: unknown view %q", name)
	}
	m.lc.mu.Lock()
	h := m.lc.health[name]
	if h != nil && h.state == Quarantined {
		if !force {
			m.lc.mu.Unlock()
			return fmt.Errorf("maintain: view %s is quarantined; repair requires force", name)
		}
		h.attempts = 0
	}
	m.lc.mu.Unlock()
	if err := m.repairOne(v); err != nil {
		m.repairFailed(name, err)
		return err
	}
	return nil
}

// RestoreHealth seeds a view's lifecycle state without running maintenance.
// Crash recovery uses it to re-impose the health a checkpoint recorded: a
// view that was Stale or Quarantined when the checkpoint was cut must come
// back untrusted, not silently Fresh. The listener fires so the optimizer's
// matching eligibility tracks the restored state.
func (m *Maintainer) RestoreHealth(name string, st State) {
	_, notify := m.lc.transition(name, st, nil)
	notify()
}

// repairOne runs one guarded recompute: Stale/Quarantined → Rebuilding →
// Fresh on success. On failure the caller decides between backoff and
// quarantine.
func (m *Maintainer) repairOne(v *View) error {
	_, notify := m.lc.transition(v.Name, Rebuilding, nil)
	notify()
	m.lc.mu.Lock()
	m.lc.stats.RepairAttempts++
	m.lc.mu.Unlock()
	err := guard(func() error { return m.recompute(v) })
	if err != nil {
		// A failed recompute must not leave a torn view behind: restore the
		// committed contents (stale but consistent) before reporting failure.
		m.db.RollbackView(v.Name)
		return err
	}
	// Publish the repaired contents as a new epoch before announcing Fresh,
	// so the optimizer can only match the view once snapshots see the rebuilt
	// rows. A commit failure counts as a failed repair: restore the committed
	// contents and let the caller apply backoff.
	if _, cerr := m.db.CommitDurable(); cerr != nil {
		m.db.RollbackView(v.Name)
		return cerr
	}
	m.lc.mu.Lock()
	m.lc.stats.RepairSuccesses++
	m.lc.mu.Unlock()
	_, notify = m.lc.transition(v.Name, Fresh, nil)
	notify()
	return nil
}

// guard runs one per-view maintenance step, converting panics into errors so
// a panicking expression (or an injected panic) degrades exactly one view
// instead of unwinding the caller.
func guard(f func() error) (err error) {
	defer func() {
		if r := recover(); r != nil {
			err = fmt.Errorf("maintain: panic during maintenance: %v", r)
		}
	}()
	return f()
}
