# Convenience targets; repro.sh is the full reproduction pipeline.

.PHONY: build test race bench vet repro

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race runs the whole test suite under the race detector, including the
# concurrent register/optimize and search/insert stress tests.
race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

repro:
	./repro.sh
