# Convenience targets; repro.sh is the full reproduction pipeline.

.PHONY: build test race bench vet chaos repro

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race runs the whole test suite under the race detector, including the
# concurrent register/optimize and search/insert stress tests.
race:
	go test -race ./...

bench:
	go test -bench=. -benchmem ./...

# chaos runs the fault-injected correctness suite (full-length) under the
# race detector: concurrent query + DML traffic with faults at every site.
chaos:
	go test -race -run 'Chaos' -count=1 -v ./internal/server

repro:
	./repro.sh
