# Convenience targets; repro.sh is the full reproduction pipeline.

.PHONY: build test race bench bench-join vet chaos recover repro

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race runs the whole test suite under the race detector, including the
# concurrent register/optimize and search/insert stress tests.
race:
	go test -race ./...

# bench runs every benchmark (no tests) with allocation stats; repeat with
# `make bench COUNT=10` and feed the output to benchstat to compare runs.
# EXEC_BENCH_SF shrinks the BenchmarkExec* TPC-H scale factor for quick passes.
COUNT ?= 1
bench:
	go test -run '^$$' -bench . -benchmem -count $(COUNT) ./...

# bench-join is the join-path regression guard: one iteration of the two
# join benchmarks at a small scale factor, checked by cmd/benchguard against
# the committed BENCH_thresholds.json (fails if ns/op exceeds a threshold by
# more than its margin). BENCH_JOIN_SF must match the thresholds file.
BENCH_JOIN_SF ?= 0.05
bench-join:
	EXEC_BENCH_SF=$(BENCH_JOIN_SF) go test -run '^$$' \
		-bench 'BenchmarkExecJoin3Way|BenchmarkExecGroupAggJoin' \
		-benchmem -benchtime 1x ./internal/exec/ | tee bench-join.out
	go run ./cmd/benchguard -thresholds BENCH_thresholds.json bench-join.out
	@rm -f bench-join.out

# chaos runs the fault-injected correctness suite (full-length) under the
# race detector: concurrent query + DML traffic with faults at every site.
chaos:
	go test -race -run 'Chaos' -count=1 -v ./internal/server

# recover runs the durability suite under the race detector: WAL framing,
# the crash kill matrix, torn tails, fsync poisoning, checkpoint faults,
# and server-level recovery gating.
recover:
	go test -race -count=1 -v ./internal/wal
	go test -race -run 'Recovering|Durable|InMemoryServerHasNoWAL' -count=1 -v ./internal/server

repro:
	./repro.sh
