# Convenience targets; repro.sh is the full reproduction pipeline.

.PHONY: build test race bench vet chaos recover repro

build:
	go build ./...

vet:
	go vet ./...

test:
	go test ./...

# race runs the whole test suite under the race detector, including the
# concurrent register/optimize and search/insert stress tests.
race:
	go test -race ./...

# bench runs every benchmark (no tests) with allocation stats; repeat with
# `make bench COUNT=10` and feed the output to benchstat to compare runs.
# EXEC_BENCH_SF shrinks the BenchmarkExec* TPC-H scale factor for quick passes.
COUNT ?= 1
bench:
	go test -run '^$$' -bench . -benchmem -count $(COUNT) ./...

# chaos runs the fault-injected correctness suite (full-length) under the
# race detector: concurrent query + DML traffic with faults at every site.
chaos:
	go test -race -run 'Chaos' -count=1 -v ./internal/server

# recover runs the durability suite under the race detector: WAL framing,
# the crash kill matrix, torn tails, fsync poisoning, checkpoint faults,
# and server-level recovery gating.
recover:
	go test -race -count=1 -v ./internal/wal
	go test -race -run 'Recovering|Durable|InMemoryServerHasNoWAL' -count=1 -v ./internal/server

repro:
	./repro.sh
