module matview

go 1.22
