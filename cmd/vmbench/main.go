// Command vmbench regenerates the paper's evaluation (§5): Figure 2
// (optimization time vs number of views in four configurations), Figure 3
// (total increase vs time inside the view-matching rule), Figure 4 (final
// plans using materialized views), and the in-text filtering statistics.
//
// Usage:
//
//	vmbench -experiment fig2|fig3|fig4|stats|all [-views N] [-queries N] [-seed S] [-step N]
//	        [-workers N] [-cpuprofile FILE] [-memprofile FILE]
//	vmbench -experiment load [-server URL] [-clients N] [-duration D] [-sf F] [-seed S]
//	        [-fault-rate P]
//	vmbench -experiment exec [-sf F] [-seed S] [-workers N]
//	vmbench -experiment advisor [-sf F] [-seed S] [-clients N] [-phase-a D] [-phase-b D]
//	        [-out FILE]
//
// The exec experiment benchmarks raw plan execution (no optimizer): each
// BenchmarkExec* plan shape runs through the seed row-at-a-time interpreter
// and the batched engine at worker counts 1 and N, reporting wall-clock and
// speedup. -sf sets the TPC-H scale factor (default 0.05 here).
//
// -workers fans each measurement's queries out over N optimizer goroutines
// (0 = GOMAXPROCS, 1 = serial as in the paper); plan choices and aggregate
// statistics are unaffected, only wall-clock time changes. -cpuprofile and
// -memprofile write pprof profiles of the run.
//
// The load experiment drives a vmserver instance with concurrent /query
// traffic and reports throughput, latency percentiles, and the plan-cache
// hit rate. With no -server URL it starts an in-process server over a fresh
// TPC-H database on a loopback port first. -fault-rate P (in-process only)
// arms fault injection at every storage and maintenance site with
// probability P, adds a DML writer to the mix, runs the background repair
// loop, and additionally reports error rate, repairs, and degraded time —
// measuring what failures cost in performance while the server keeps
// answering.
package main

import (
	"flag"
	"fmt"
	"net"
	"net/http"
	"os"
	"runtime"
	"runtime/pprof"
	"time"

	"matview/internal/faults"
	"matview/internal/harness"
	"matview/internal/server"
	"matview/internal/tpch"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2, fig3, fig4, stats, load, exec, advisor, or all")
	views := flag.Int("views", 1000, "maximum number of materialized views")
	queries := flag.Int("queries", 1000, "number of queries per measurement")
	seed := flag.Int64("seed", 1, "workload seed")
	step := flag.Int("step", 100, "view-count step for the sweep")
	workers := flag.Int("workers", 1, "optimizer goroutines per measurement (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := flag.Bool("v", false, "print per-point progress")
	serverURL := flag.String("server", "", "load: base URL of a running vmserver ('' = start one in-process)")
	clients := flag.Int("clients", 8, "load: concurrent client goroutines")
	duration := flag.Duration("duration", 3*time.Second, "load: how long to drive traffic")
	sf := flag.Float64("sf", 0.01, "load: TPC-H scale factor for the in-process server")
	faultRate := flag.Float64("fault-rate", 0, "load: per-site fault probability for the in-process server (0 disables)")
	phaseA := flag.Duration("phase-a", 8*time.Second, "advisor: pre-shift phase duration")
	phaseB := flag.Duration("phase-b", 16*time.Second, "advisor: post-shift phase duration")
	outFile := flag.String("out", "", "advisor: write the JSON report to this file")
	flag.Parse()

	if *experiment == "load" {
		check(runLoad(*serverURL, *clients, *duration, *sf, *seed, *faultRate))
		return
	}
	if *experiment == "advisor" {
		check(runAdvisor(*sf, *seed, *clients, *phaseA, *phaseB, *outFile))
		return
	}
	if *experiment == "exec" {
		execSF := 0.05 // big enough that per-row costs dominate generation
		flag.Visit(func(f *flag.Flag) {
			if f.Name == "sf" {
				execSF = *sf
			}
		})
		wk := *workers
		if wk <= 1 {
			wk = runtime.GOMAXPROCS(0)
		}
		counts := []int{1}
		if wk > 1 {
			counts = append(counts, wk)
		}
		check(runExec(os.Stdout, execSF, *seed, counts, 3))
		return
	}

	cfg := harness.DefaultConfig(*seed)
	cfg.NumViews = *views
	cfg.NumQueries = *queries
	cfg.Workers = *workers
	if cfg.Workers == 0 {
		cfg.Workers = -1 // harness: negative selects GOMAXPROCS
	}
	cfg.ViewCounts = nil
	for n := 0; n <= *views; n += *step {
		cfg.ViewCounts = append(cfg.ViewCounts, n)
	}

	effectiveWorkers := cfg.Workers
	if effectiveWorkers < 0 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Workload: %d views, %d queries, seed %d, %d worker(s) (TPC-H catalog, SF %.1f)\n\n",
		cfg.NumViews, cfg.NumQueries, *seed, effectiveWorkers, cfg.ScaleFactor)
	h := harness.New(cfg)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}

	switch *experiment {
	case "fig2":
		ms, err := h.RunFigure2(progress)
		check(err)
		harness.ReportFigure2(os.Stdout, ms)
	case "fig3":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportFigure3(os.Stdout, ms)
	case "fig4":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportFigure4(os.Stdout, ms)
	case "stats":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportStats(os.Stdout, ms)
	case "all":
		ms2, err := h.RunFigure2(progress)
		check(err)
		harness.ReportFigure2(os.Stdout, ms2)
		fmt.Println()
		// Reuse the Alt&Filter series for Figures 3–4 and the stats.
		var full []harness.Measurement
		for _, m := range ms2 {
			if m.Setting == "Alt&Filter" {
				full = append(full, m)
			}
		}
		harness.ReportFigure3(os.Stdout, full)
		fmt.Println()
		harness.ReportFigure4(os.Stdout, full)
		fmt.Println()
		harness.ReportStats(os.Stdout, full)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

// loadStatements builds the canonical load mix: two rollup views plus an
// index, then a pool of point-rollup SELECTs over a rotating constant set.
// The pool repeats quickly, so after one warm pass nearly every request is
// a plan-cache hit — the serve-many-similar-queries regime the cache is
// built for.
func loadStatements() (optional, setup, queries []string) {
	optional = []string{"drop view load_pq", "drop view load_ord"}
	setup = []string{
		`create view load_pq with schemabinding as
			select l_partkey, count_big(*) as cnt, sum(l_quantity) as qty
			from lineitem group by l_partkey`,
		`create unique index load_pq_idx on load_pq (l_partkey)`,
		`create view load_ord with schemabinding as
			select o_custkey, count_big(*) as cnt, sum(o_totalprice) as total
			from orders group by o_custkey`,
	}
	for k := 1; k <= 32; k++ {
		queries = append(queries, fmt.Sprintf(
			"select l_partkey, sum(l_quantity) as qty from lineitem where l_partkey = %d group by l_partkey", k))
	}
	for k := 1; k <= 16; k++ {
		queries = append(queries, fmt.Sprintf(
			"select o_custkey, sum(o_totalprice) as total from orders where o_custkey = %d group by o_custkey", k))
	}
	queries = append(queries,
		"select count_big(*) as n from lineitem",
		"select l_partkey, count_big(*) as cnt from lineitem group by l_partkey")
	return optional, setup, queries
}

// loadMutations builds the writer's DML pool: an insert/delete pair over a
// dedicated part key, so the table returns to its initial state every two
// statements while every cycle exercises delta maintenance (and, with
// faults armed, the repair path).
func loadMutations(orderKey int64) []string {
	return []string{
		fmt.Sprintf(`insert into lineitem values
			(%d, 990, 1, 7, 2.0, 20.0, 0.0, 0.0, 'N', 'O',
			 DATE '1995-05-05', DATE '1995-05-15', DATE '1995-05-25',
			 'NONE', 'MAIL', 'loadgen')`, orderKey),
		"delete from lineitem where l_partkey = 990",
	}
}

func runLoad(url string, clients int, duration time.Duration, sf float64, seed int64, faultRate float64) error {
	var mutations []string
	if url == "" {
		fmt.Printf("starting in-process vmserver (sf=%g, seed=%d)...\n", sf, seed)
		db, err := tpch.NewDatabase(sf, seed)
		if err != nil {
			return err
		}
		cfg := server.Config{}
		if faultRate > 0 {
			cfg.RepairInterval = 50 * time.Millisecond
		}
		srv := server.New(db, cfg)
		if faultRate > 0 {
			inj := faults.New(seed)
			inj.AddAll(faults.Rule{Rate: faultRate})
			srv.SetFaultInjector(inj)
			snap := db.Snapshot()
			mutations = loadMutations(snap.TableData("orders").RowAt(0)[tpch.OOrderkey].Int())
			snap.Release()
			fmt.Printf("fault injection armed: rate %.2f at every site, repair loop every %v\n",
				faultRate, cfg.RepairInterval)
		}
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return err
		}
		go func() { _ = http.Serve(ln, srv.Handler()) }()
		url = "http://" + ln.Addr().String()
	} else if faultRate > 0 {
		return fmt.Errorf("-fault-rate needs the in-process server (drop -server)")
	}
	optional, setup, queries := loadStatements()
	fmt.Printf("driving %s: %d clients, %d query shapes, %v\n", url, clients, len(queries), duration)
	res, err := server.RunLoad(server.LoadOptions{
		URL:           url,
		Clients:       clients,
		Duration:      duration,
		SetupOptional: optional,
		Setup:         setup,
		Queries:       queries,
		Mutations:     mutations,
	})
	if err != nil {
		return err
	}
	fmt.Printf("\nrequests:        %d (%d errors, %d rejected 503s)\n", res.Requests, res.Errors, res.Rejected)
	fmt.Printf("elapsed:         %v\n", res.Elapsed.Round(time.Millisecond))
	fmt.Printf("throughput:      %.0f qps\n", res.QPS)
	fmt.Printf("latency p50/p99: %v / %v\n", res.P50.Round(time.Microsecond), res.P99.Round(time.Microsecond))
	fmt.Printf("plan cache:      %d hits, %d misses (%.1f%% hit rate)\n",
		res.CacheHits, res.CacheMisses, 100*res.CacheHitRate)
	fmt.Printf("zone maps:       %d blocks scanned, %d skipped (%.1f%% skip rate)\n",
		res.BlocksScanned, res.BlocksSkipped, 100*res.SkipRate)
	fmt.Printf("join pipeline:   %d rids probed, %d matched (%.1f%% hit rate), %d rows gathered\n",
		res.RowsProbed, res.RowsMatched, 100*res.ProbeHitRate, res.RowsGathered)
	if faultRate > 0 {
		fmt.Printf("error rate:      %.2f%% of queries\n", 100*res.ErrorRate)
		fmt.Printf("mutations:       %d (%d failed and degraded views)\n", res.Mutations, res.MutationErrors)
		fmt.Printf("repairs:         %d successful rebuilds\n", res.Repairs)
		fmt.Printf("degraded time:   %v with >=1 non-fresh view\n", res.DegradedTime.Round(time.Millisecond))
	}
	return nil
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}
