// Command vmbench regenerates the paper's evaluation (§5): Figure 2
// (optimization time vs number of views in four configurations), Figure 3
// (total increase vs time inside the view-matching rule), Figure 4 (final
// plans using materialized views), and the in-text filtering statistics.
//
// Usage:
//
//	vmbench -experiment fig2|fig3|fig4|stats|all [-views N] [-queries N] [-seed S] [-step N]
//	        [-workers N] [-cpuprofile FILE] [-memprofile FILE]
//
// -workers fans each measurement's queries out over N optimizer goroutines
// (0 = GOMAXPROCS, 1 = serial as in the paper); plan choices and aggregate
// statistics are unaffected, only wall-clock time changes. -cpuprofile and
// -memprofile write pprof profiles of the run.
package main

import (
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"

	"matview/internal/harness"
)

func main() {
	experiment := flag.String("experiment", "all", "fig2, fig3, fig4, stats, or all")
	views := flag.Int("views", 1000, "maximum number of materialized views")
	queries := flag.Int("queries", 1000, "number of queries per measurement")
	seed := flag.Int64("seed", 1, "workload seed")
	step := flag.Int("step", 100, "view-count step for the sweep")
	workers := flag.Int("workers", 1, "optimizer goroutines per measurement (0 = GOMAXPROCS, 1 = serial)")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile to this file")
	memprofile := flag.String("memprofile", "", "write a heap profile to this file on exit")
	verbose := flag.Bool("v", false, "print per-point progress")
	flag.Parse()

	cfg := harness.DefaultConfig(*seed)
	cfg.NumViews = *views
	cfg.NumQueries = *queries
	cfg.Workers = *workers
	if cfg.Workers == 0 {
		cfg.Workers = -1 // harness: negative selects GOMAXPROCS
	}
	cfg.ViewCounts = nil
	for n := 0; n <= *views; n += *step {
		cfg.ViewCounts = append(cfg.ViewCounts, n)
	}

	effectiveWorkers := cfg.Workers
	if effectiveWorkers < 0 {
		effectiveWorkers = runtime.GOMAXPROCS(0)
	}
	fmt.Printf("Workload: %d views, %d queries, seed %d, %d worker(s) (TPC-H catalog, SF %.1f)\n\n",
		cfg.NumViews, cfg.NumQueries, *seed, effectiveWorkers, cfg.ScaleFactor)
	h := harness.New(cfg)

	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		check(err)
		check(pprof.StartCPUProfile(f))
		defer func() {
			pprof.StopCPUProfile()
			f.Close()
		}()
	}
	if *memprofile != "" {
		defer func() {
			f, err := os.Create(*memprofile)
			check(err)
			runtime.GC()
			check(pprof.WriteHeapProfile(f))
			f.Close()
		}()
	}

	var progress *os.File
	if *verbose {
		progress = os.Stderr
	}

	switch *experiment {
	case "fig2":
		ms, err := h.RunFigure2(progress)
		check(err)
		harness.ReportFigure2(os.Stdout, ms)
	case "fig3":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportFigure3(os.Stdout, ms)
	case "fig4":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportFigure4(os.Stdout, ms)
	case "stats":
		ms, err := h.RunFigure34(progress)
		check(err)
		harness.ReportStats(os.Stdout, ms)
	case "all":
		ms2, err := h.RunFigure2(progress)
		check(err)
		harness.ReportFigure2(os.Stdout, ms2)
		fmt.Println()
		// Reuse the Alt&Filter series for Figures 3–4 and the stats.
		var full []harness.Measurement
		for _, m := range ms2 {
			if m.Setting == "Alt&Filter" {
				full = append(full, m)
			}
		}
		harness.ReportFigure3(os.Stdout, full)
		fmt.Println()
		harness.ReportFigure4(os.Stdout, full)
		fmt.Println()
		harness.ReportStats(os.Stdout, full)
	default:
		fmt.Fprintf(os.Stderr, "unknown experiment %q\n", *experiment)
		os.Exit(2)
	}
}

func check(err error) {
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmbench:", err)
		os.Exit(1)
	}
}
