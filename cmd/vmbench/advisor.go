package main

// The advisor experiment answers the closed-loop question the static figures
// cannot: does a server that mines its own query stream and re-plans its
// materialized views actually beat a server tuned for yesterday's workload
// once the workload shifts?
//
// Two in-process vmservers run sequentially over identical TPC-H data:
//
//   - static: an operator pre-created the rollup that serves phase A
//     (the load experiment's partkey rollup, with its index) and nothing
//     else happens — the classic "DBA tuned it once" baseline.
//   - auto: starts with no views at all, autopilot enabled with a short
//     control interval and a small decay half-life.
//
// Both see the same two-phase workload: phase A is point-rollup lookups on
// lineitem partkeys; at the shift the clients switch to part⋈lineitem brand
// rollups, which the static server's view cannot serve. Per-second latency
// windows, the autopilot's create/drop timeline, and a post-shift tail
// comparison go into the JSON report (-out, committed as BENCH_advisor.json).

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"time"

	"matview/internal/autopilot"
	"matview/internal/server"
	"matview/internal/tpch"
)

// advisorSample is one request observation during a drive.
type advisorSample struct {
	offset time.Duration // since drive start
	lat    time.Duration
	err    bool
}

// advisorEvent is one autopilot actuation observed by the poller.
type advisorEvent struct {
	TSeconds float64 `json:"t_seconds"`
	Kind     string  `json:"kind"` // "create" | "drop"
	View     string  `json:"view"`
	SQL      string  `json:"sql,omitempty"`
}

// advisorWindow is one 1-second latency bucket.
type advisorWindow struct {
	T        int   `json:"t"`
	Requests int   `json:"requests"`
	P50us    int64 `json:"p50_us"`
	P99us    int64 `json:"p99_us"`
}

// advisorRun is one server's side of the report.
type advisorRun struct {
	Label     string          `json:"label"`
	Requests  int             `json:"requests"`
	Errors    int             `json:"errors"`
	TailP50us int64           `json:"tail_p50_us"`
	TailP99us int64           `json:"tail_p99_us"`
	Windows   []advisorWindow `json:"windows"`
	Events    []advisorEvent  `json:"events,omitempty"`
	Creates   int64           `json:"autopilot_creates,omitempty"`
	Drops     int64           `json:"autopilot_drops,omitempty"`

	samples []advisorSample
}

// advisorReport is the BENCH_advisor.json shape.
type advisorReport struct {
	Description string            `json:"description"`
	Date        string            `json:"date"`
	Machine     map[string]any    `json:"machine"`
	Config      map[string]any    `json:"config"`
	Static      *advisorRun       `json:"static"`
	Auto        *advisorRun       `json:"auto"`
	Acceptance  advisorAcceptance `json:"acceptance"`
}

type advisorAcceptance struct {
	ShiftSeconds     float64 `json:"shift_seconds"`
	TailStartSeconds float64 `json:"tail_start_seconds"`
	StaticTailP99us  int64   `json:"static_tail_p99_us"`
	AutoTailP99us    int64   `json:"auto_tail_p99_us"`
	// AutoBeatsStaticP99 is the headline: after the workload shift settles,
	// the self-tuning server's p99 is below the statically-tuned server's.
	AutoBeatsStaticP99 bool    `json:"auto_beats_static_p99"`
	P99Speedup         float64 `json:"p99_speedup"`
	// FirstCreateAfterShiftSeconds is how long after the shift the autopilot
	// installed its first new Fresh view (-1 = never).
	FirstCreateAfterShiftSeconds float64 `json:"first_create_after_shift_seconds"`
}

// advisorPhaseA is the pre-shift pool: point-rollup lookups the static
// server's pre-created view serves perfectly.
func advisorPhaseA() []string {
	var qs []string
	for k := 1; k <= 24; k++ {
		qs = append(qs, fmt.Sprintf(
			"select l_partkey, sum(l_quantity) as qty from lineitem where l_partkey = %d group by l_partkey", k))
	}
	return qs
}

// advisorPhaseB is the post-shift pool: brand rollups over part⋈lineitem,
// a shape no phase-A view can answer.
func advisorPhaseB() []string {
	var qs []string
	for i := 1; i <= 4; i++ {
		for j := 1; j <= 4; j++ {
			qs = append(qs, fmt.Sprintf(
				`select p_brand, count_big(*) as cnt, sum(l_quantity) as qty from part, lineitem where p_partkey = l_partkey and p_brand = 'Brand#%d%d' group by p_brand`, i, j))
		}
	}
	return qs
}

// advisorStaticSetup mirrors the load experiment's operator tuning for
// phase A: the partkey rollup plus its unique index.
func advisorStaticSetup() []string {
	return []string{
		`create view static_pq with schemabinding as
			select l_partkey, count_big(*) as cnt, sum(l_quantity) as qty
			from lineitem group by l_partkey`,
		`create unique index static_pq_idx on static_pq (l_partkey)`,
	}
}

func advPostJSON(c *http.Client, url string, body any, out any) (int, error) {
	b, err := json.Marshal(body)
	if err != nil {
		return 0, err
	}
	resp, err := c.Post(url, "application/json", bytes.NewReader(b))
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if out != nil && resp.StatusCode == http.StatusOK {
		return resp.StatusCode, json.NewDecoder(resp.Body).Decode(out)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	return resp.StatusCode, nil
}

func advGetJSON(c *http.Client, url string, out any) error {
	resp, err := c.Get(url)
	if err != nil {
		return err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		_, _ = io.Copy(io.Discard, resp.Body)
		return fmt.Errorf("GET %s: %d", url, resp.StatusCode)
	}
	return json.NewDecoder(resp.Body).Decode(out)
}

// advisorDrive boots one in-process server, runs the optional setup DDL,
// drives the two-phase workload with `clients` concurrent clients, and (when
// the server has an autopilot) polls /autopilot for the actuation timeline.
func advisorDrive(label string, sf float64, seed int64, cfg server.Config,
	setup []string, clients int, phaseA, phaseB time.Duration) (*advisorRun, error) {
	db, err := tpch.NewDatabase(sf, seed)
	if err != nil {
		return nil, err
	}
	srv := server.New(db, cfg)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		return nil, err
	}
	go func() { _ = http.Serve(ln, srv.Handler()) }()
	url := "http://" + ln.Addr().String()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		_ = srv.Shutdown(ctx)
		_ = ln.Close()
	}()

	httpc := &http.Client{Timeout: 30 * time.Second}
	for _, stmt := range setup {
		code, err := advPostJSON(httpc, url+"/exec", map[string]string{"sql": stmt}, nil)
		if err != nil {
			return nil, fmt.Errorf("%s setup: %w", label, err)
		}
		if code != http.StatusOK {
			return nil, fmt.Errorf("%s setup: status %d for %q", label, code, stmt)
		}
	}

	run := &advisorRun{Label: label}
	poolA, poolB := advisorPhaseA(), advisorPhaseB()
	total := phaseA + phaseB
	var mu sync.Mutex
	t0 := time.Now()

	// Autopilot poller: diff the managed set every 250ms into events.
	pollDone := make(chan struct{})
	var pollWG sync.WaitGroup
	if cfg.Autopilot != nil {
		pollWG.Add(1)
		go func() {
			defer pollWG.Done()
			known := map[string]string{} // name -> sql
			tick := time.NewTicker(500 * time.Millisecond)
			defer tick.Stop()
			for {
				select {
				case <-pollDone:
					return
				case <-tick.C:
				}
				var st autopilot.Status
				if err := advGetJSON(httpc, url+"/autopilot", &st); err != nil {
					continue
				}
				now := time.Since(t0).Seconds()
				live := map[string]bool{}
				mu.Lock()
				for _, m := range st.Managed {
					live[m.Name] = true
					if _, ok := known[m.Name]; !ok {
						known[m.Name] = m.SQL
						run.Events = append(run.Events,
							advisorEvent{TSeconds: now, Kind: "create", View: m.Name, SQL: m.SQL})
					}
				}
				for name := range known {
					if !live[name] {
						delete(known, name)
						run.Events = append(run.Events,
							advisorEvent{TSeconds: now, Kind: "drop", View: name})
					}
				}
				run.Creates, run.Drops = st.Creates, st.Drops
				mu.Unlock()
			}
		}()
	}

	var wg sync.WaitGroup
	for c := 0; c < clients; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			client := &http.Client{Timeout: 30 * time.Second}
			for i := c; ; i++ {
				off := time.Since(t0)
				if off >= total {
					return
				}
				pool := poolA
				if off >= phaseA {
					pool = poolB
				}
				sql := pool[i%len(pool)]
				start := time.Now()
				code, err := advPostJSON(client, url+"/query", map[string]string{"sql": sql}, nil)
				s := advisorSample{offset: off, lat: time.Since(start), err: err != nil || code != http.StatusOK}
				mu.Lock()
				run.samples = append(run.samples, s)
				mu.Unlock()
			}
		}(c)
	}
	wg.Wait()
	if cfg.Autopilot != nil {
		close(pollDone)
		pollWG.Wait()
	}
	return run, nil
}

func advisorPercentile(lats []time.Duration, q float64) int64 {
	if len(lats) == 0 {
		return 0
	}
	sort.Slice(lats, func(i, j int) bool { return lats[i] < lats[j] })
	idx := int(q * float64(len(lats)-1))
	return lats[idx].Microseconds()
}

// finishRun folds raw samples into 1-second windows and the post-shift tail
// aggregate, then drops the raw samples.
func (r *advisorRun) finish(total, tailStart time.Duration) {
	byWindow := map[int][]time.Duration{}
	var tail []time.Duration
	for _, s := range r.samples {
		r.Requests++
		if s.err {
			r.Errors++
			continue
		}
		w := int(s.offset / time.Second)
		byWindow[w] = append(byWindow[w], s.lat)
		if s.offset >= tailStart {
			tail = append(tail, s.lat)
		}
	}
	for w := 0; w < int((total + time.Second - 1) / time.Second); w++ {
		lats := byWindow[w]
		r.Windows = append(r.Windows, advisorWindow{
			T:        w,
			Requests: len(lats),
			P50us:    advisorPercentile(lats, 0.50),
			P99us:    advisorPercentile(lats, 0.99),
		})
	}
	r.TailP50us = advisorPercentile(tail, 0.50)
	r.TailP99us = advisorPercentile(tail, 0.99)
	r.samples = nil
}

func runAdvisor(sf float64, seed int64, clients int, phaseA, phaseB time.Duration, outFile string) error {
	if clients < 1 {
		clients = 1
	}
	settle := phaseB / 3
	tailStart := phaseA + settle
	total := phaseA + phaseB

	fmt.Printf("advisor experiment: sf=%g seed=%d clients=%d, phase A %v -> shift -> phase B %v (tail from %v)\n",
		sf, seed, clients, phaseA, phaseB, tailStart)

	fmt.Println("\n[static] operator-tuned server: phase-A rollup pre-created, no autopilot")
	static, err := advisorDrive("static", sf, seed, server.Config{}, advisorStaticSetup(), clients, phaseA, phaseB)
	if err != nil {
		return err
	}
	static.finish(total, tailStart)

	fmt.Println("[auto]   self-tuning server: no views, autopilot enabled")
	// Tuned for the benchmark machine (single vCPU, race-enabled runs): the
	// selection cycle competes with query serving for the one core, so it
	// runs sparsely with a bounded local search. Longer DropAfterMisses also
	// lets the decayed weight of the pre-shift shapes collapse before the
	// stale rollup is reaped, so the selection cannot flicker it back in.
	autoCfg := server.Config{Autopilot: &autopilot.Config{
		Interval:         1250 * time.Millisecond,
		MaxViews:         3,
		TopK:             8,
		MinSamples:       24,
		LocalSearchMoves: 32,
		CreateAfterHits:  2,
		DropAfterMisses:  4,
		Recorder:         autopilot.RecorderConfig{HalfLife: 3 * time.Second, MaxEntries: 512},
	}}
	auto, err := advisorDrive("auto", sf, seed, autoCfg, nil, clients, phaseA, phaseB)
	if err != nil {
		return err
	}
	auto.finish(total, tailStart)

	firstCreate := -1.0
	for _, e := range auto.Events {
		if e.Kind == "create" && e.TSeconds >= phaseA.Seconds() {
			firstCreate = e.TSeconds - phaseA.Seconds()
			break
		}
	}
	acc := advisorAcceptance{
		ShiftSeconds:                 phaseA.Seconds(),
		TailStartSeconds:             tailStart.Seconds(),
		StaticTailP99us:              static.TailP99us,
		AutoTailP99us:                auto.TailP99us,
		AutoBeatsStaticP99:           auto.TailP99us < static.TailP99us,
		FirstCreateAfterShiftSeconds: firstCreate,
	}
	if auto.TailP99us > 0 {
		acc.P99Speedup = float64(static.TailP99us) / float64(auto.TailP99us)
	}

	report := advisorReport{
		Description: "Closed-loop autopilot vs statically-tuned server under a workload shift. " +
			"Both servers run identical TPC-H data; at t=shift the clients switch from partkey point-rollups " +
			"(which the static server's pre-created view serves) to part-brand join rollups (which it cannot). " +
			"The auto server starts with zero views and mines its own query stream. " +
			"Regenerate with: go run ./cmd/vmbench -experiment advisor -out BENCH_advisor.json",
		Date: time.Now().Format("2006-01-02"),
		Machine: map[string]any{
			"goos": runtime.GOOS, "goarch": runtime.GOARCH,
			"cpus": runtime.NumCPU(), "go": runtime.Version(),
		},
		Config: map[string]any{
			"tpch_scale_factor": sf, "seed": seed, "clients": clients,
			"phase_a_seconds": phaseA.Seconds(), "phase_b_seconds": phaseB.Seconds(),
			"autopilot": map[string]any{
				"interval_ms": 300, "max_views": 3, "top_k": 12,
				"min_samples": 24, "local_search_moves": 96, "half_life_seconds": 4,
				"create_after_hits": 2, "drop_after_misses": 6,
			},
		},
		Static:     static,
		Auto:       auto,
		Acceptance: acc,
	}

	fmt.Printf("\n%-4s  %-22s  %-22s\n", "t", "static p50/p99 (us)", "auto p50/p99 (us)")
	for i := range report.Static.Windows {
		sw := report.Static.Windows[i]
		aw := advisorWindow{}
		if i < len(report.Auto.Windows) {
			aw = report.Auto.Windows[i]
		}
		marker := ""
		if float64(sw.T) == acc.ShiftSeconds {
			marker = "  <- workload shift"
		}
		for _, e := range report.Auto.Events {
			if int(e.TSeconds) == sw.T {
				marker += fmt.Sprintf("  [%s %s]", e.Kind, e.View)
			}
		}
		fmt.Printf("%-4d  %9d /%10d  %9d /%10d%s\n", sw.T, sw.P50us, sw.P99us, aw.P50us, aw.P99us, marker)
	}
	fmt.Printf("\npost-shift tail p99: static %dus, auto %dus (%.1fx)\n",
		acc.StaticTailP99us, acc.AutoTailP99us, acc.P99Speedup)
	fmt.Printf("autopilot: %d creates, %d drops; first create %.1fs after shift\n",
		auto.Creates, auto.Drops, acc.FirstCreateAfterShiftSeconds)
	if acc.AutoBeatsStaticP99 {
		fmt.Println("ACCEPTED: self-tuning server beats the static server on post-shift p99")
	} else {
		fmt.Println("NOT ACCEPTED: static server still ahead on post-shift p99")
	}

	if outFile != "" {
		data, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		if err := os.WriteFile(outFile, append(data, '\n'), 0o644); err != nil {
			return err
		}
		fmt.Printf("report written to %s\n", outFile)
	}
	return nil
}
