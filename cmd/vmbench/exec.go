package main

import (
	"fmt"
	"io"
	"time"

	"matview/internal/exec"
	"matview/internal/expr"
	"matview/internal/spjg"
	"matview/internal/storage"
	"matview/internal/tpch"
)

// The exec experiment measures raw plan execution on TPC-H data: each plan
// runs through the row-at-a-time reference interpreter (the seed executor)
// and the batched engine at several worker counts, and the report shows
// wall-clock per run plus the speedup over the reference. The plan shapes
// mirror the BenchmarkExec* suite in internal/exec so the two report the
// same workloads.

// execCase is one benchmark plan over the TPC-H database.
type execCase struct {
	name  string
	build func(db *storage.Database) exec.Node
}

func execCases() []execCase {
	return []execCase{
		{"scan", func(db *storage.Database) exec.Node {
			n := len(db.Catalog.Table("lineitem").Columns)
			return &exec.Project{
				In:    &exec.TableScan{Table: "lineitem", NCols: n},
				Exprs: []expr.Expr{expr.Col(0, tpch.LOrderkey), expr.Col(0, tpch.LQuantity)},
			}
		}},
		{"filter-scan", func(db *storage.Database) exec.Node {
			n := len(db.Catalog.Table("lineitem").Columns)
			discountBand := expr.NewCmp(expr.LE,
				expr.Func{Name: "ABS", Args: []expr.Expr{
					expr.NewArith(expr.Sub, expr.Col(0, tpch.LDiscount), expr.CFloat(0.05)),
				}},
				expr.CFloat(0.01))
			return &exec.TableScan{
				Table: "lineitem",
				NCols: n,
				Filter: expr.NewAnd(
					discountBand,
					expr.NewCmp(expr.LT, expr.Col(0, tpch.LQuantity), expr.CInt(10)),
				),
			}
		}},
		{"join3", func(db *storage.Database) exec.Node {
			no := len(db.Catalog.Table("orders").Columns)
			nc := len(db.Catalog.Table("customer").Columns)
			nl := len(db.Catalog.Table("lineitem").Columns)
			oc := &exec.HashJoin{
				L: &exec.TableScan{Table: "orders", NCols: no,
					Filter: expr.NewCmp(expr.GT, expr.Col(0, tpch.OTotalprice), expr.CFloat(570000))},
				R:     &exec.TableScan{Table: "customer", NCols: nc},
				LCols: []int{tpch.OCustkey},
				RCols: []int{tpch.CCustkey},
			}
			return &exec.HashJoin{
				L:     oc,
				R:     &exec.TableScan{Table: "lineitem", NCols: nl},
				LCols: []int{tpch.OOrderkey},
				RCols: []int{tpch.LOrderkey},
			}
		}},
		{"group-agg-join", func(db *storage.Database) exec.Node {
			np := len(db.Catalog.Table("part").Columns)
			nl := len(db.Catalog.Table("lineitem").Columns)
			join := &exec.HashJoin{
				L:     &exec.TableScan{Table: "part", NCols: np},
				R:     &exec.TableScan{Table: "lineitem", NCols: nl},
				LCols: []int{tpch.PPartkey},
				RCols: []int{tpch.LPartkey},
			}
			return &exec.HashAgg{
				In:      join,
				GroupBy: []expr.Expr{expr.Col(0, tpch.PBrand)},
				Aggs: []exec.AggSpec{
					{Num: exec.SimpleAgg{Kind: spjg.AggCountStar}},
					{Num: exec.SimpleAgg{Kind: spjg.AggSum, Arg: expr.Col(0, np+tpch.LQuantity)}},
					{Num: exec.SimpleAgg{Kind: spjg.AggAvg, Arg: expr.Col(0, np+tpch.LExtendedprice)}},
				},
			}
		}},
	}
}

// timeExec runs exe `runs` times (after one untimed warmup) and returns the
// best wall-clock time and the row count.
func timeExec(runs int, exe func() ([]storage.Row, error)) (time.Duration, int, error) {
	rows, err := exe()
	if err != nil {
		return 0, 0, err
	}
	best := time.Duration(1<<63 - 1)
	for i := 0; i < runs; i++ {
		start := time.Now()
		rows, err = exe()
		if err != nil {
			return 0, 0, err
		}
		if d := time.Since(start); d < best {
			best = d
		}
	}
	return best, len(rows), nil
}

// runExec drives the exec experiment: every case through the reference
// interpreter and the engine at each worker count.
func runExec(w io.Writer, sf float64, seed int64, workerCounts []int, runs int) error {
	fmt.Fprintf(w, "generating TPC-H SF %g (seed %d)...\n", sf, seed)
	db, err := tpch.NewDatabase(sf, seed)
	if err != nil {
		return err
	}
	fmt.Fprintf(w, "%d lineitem rows; best of %d runs per executor\n\n",
		db.Table("lineitem").NumRows(), runs)
	fmt.Fprintf(w, "%-16s %-12s %12s %10s %9s %11s %16s %14s\n",
		"plan", "executor", "time", "rows", "speedup", "blk-skip", "rows-gathered/op", "probe-hit-rate")
	for _, c := range execCases() {
		plan := c.build(db)
		ref, rows, err := timeExec(runs, func() ([]storage.Row, error) {
			return exec.RunReference(db, plan)
		})
		if err != nil {
			return fmt.Errorf("%s: reference: %w", c.name, err)
		}
		fmt.Fprintf(w, "%-16s %-12s %12v %10d %9s %11s %16s %14s\n",
			c.name, "seed", ref.Round(time.Microsecond), rows, "1.00x", "-", "-", "-")
		for _, wk := range workerCounts {
			eng := &exec.Engine{Workers: wk}
			exec.ResetScanStats()
			d, erows, err := timeExec(runs, func() ([]storage.Row, error) {
				return eng.Run(db, plan)
			})
			if err != nil {
				return fmt.Errorf("%s: engine w=%d: %w", c.name, wk, err)
			}
			if erows != rows {
				return fmt.Errorf("%s: engine w=%d returned %d rows, reference %d", c.name, wk, erows, rows)
			}
			// The scan counters cover the warmup plus every timed run: the
			// rates are ratios (repetition cancels out), and the per-op
			// gather count divides by the runs+1 total executions.
			st := exec.ReadScanStats()
			gathered, hitRate := "-", "-"
			if st.RowsProbed > 0 {
				gathered = fmt.Sprintf("%d", st.RowsGathered/int64(runs+1))
				hitRate = fmt.Sprintf("%.1f%%", 100*st.ProbeHitRate())
			}
			fmt.Fprintf(w, "%-16s %-12s %12v %10d %8.2fx %10.1f%% %16s %14s\n",
				c.name, fmt.Sprintf("engine-w%d", wk), d.Round(time.Microsecond), erows,
				float64(ref)/float64(d), 100*st.SkipRate(), gathered, hitRate)
		}
	}
	return nil
}
