// Command vmserver serves the full materialized-view stack over HTTP/JSON:
// a TPC-H database with the optimizer, plan cache, executor, and
// incremental maintainer behind four endpoints.
//
//	POST /query   {"sql": "select ...", "explain": false}  — plan-cached SELECTs
//	POST /exec    {"sql": "insert ... | delete ... | create view ... | create index ... | drop view ..."}
//	GET  /healthz — liveness (503 while draining; "degraded" + view lists while any view is non-Fresh)
//	GET  /metrics — counters: queries, plan-cache hit/miss/eviction, latency percentiles,
//	                optimizer stats, view-lifecycle census and repair/degraded-time stats
//
// Usage:
//
//	vmserver [-addr :8080] [-sf 0.01] [-seed 1] [-max-concurrent 64]
//	         [-timeout 5s] [-cache-size 1024] [-max-rows 10000]
//	         [-repair-interval 1s] [-fault-rate 0]
//	         [-autopilot] [-autopilot-interval 5s] [-autopilot-views 4]
//	         [-autopilot-budget 0]
//	         [-data-dir ""] [-checkpoint-interval 30s]
//
// -data-dir makes the server durable: committed statements are WAL-logged and
// fsync'd before their epochs publish, checkpoints are written every
// -checkpoint-interval, and startup recovers checkpoint+log instead of
// regenerating TPC-H data (first boot in an empty directory still generates
// it). The socket opens before recovery: /healthz answers 503 "recovering"
// until replay completes, then traffic flows. With the flag unset the server
// is pure in-memory, exactly as before.
//
// -repair-interval runs the background repair pass that rebuilds views whose
// maintenance failed (0 disables it). -fault-rate arms chaos-style fault
// injection at every storage and maintenance site — useful for demonstrating
// degraded-mode behavior against a live server, never for production.
//
// -autopilot turns on the closed-loop view controller: the server mines the
// live query stream into a decayed fingerprint histogram, periodically
// re-plans the materialized-view set with the advisor under the given
// budget, and creates/drops views in the background through the maintenance
// lifecycle. GET /autopilot reports the controller state and mined workload;
// POST /autopilot {"enabled": false} is the kill switch (capture continues).
//
// SIGINT/SIGTERM triggers a graceful shutdown: new requests get 503 while
// in-flight requests drain (up to 10s).
package main

import (
	"context"
	"flag"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"matview/internal/autopilot"
	"matview/internal/catalog"
	"matview/internal/faults"
	"matview/internal/server"
	"matview/internal/storage"
	"matview/internal/tpch"
	"matview/internal/wal"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	sf := flag.Float64("sf", 0.01, "TPC-H scale factor for the backing database")
	seed := flag.Int64("seed", 1, "data generation seed")
	maxConcurrent := flag.Int("max-concurrent", 64, "admission-control slots; excess requests get 503")
	timeout := flag.Duration("timeout", 5*time.Second, "per-request optimization timeout")
	cacheSize := flag.Int("cache-size", 1024, "plan cache capacity (entries)")
	maxRows := flag.Int("max-rows", 10000, "max rows returned per query (0 = unlimited)")
	repairInterval := flag.Duration("repair-interval", time.Second, "background repair pass period for degraded views (0 disables)")
	faultRate := flag.Float64("fault-rate", 0, "per-site fault injection probability for chaos runs (0 disables)")
	pilot := flag.Bool("autopilot", false, "run the closed-loop view autopilot")
	pilotInterval := flag.Duration("autopilot-interval", 5*time.Second, "autopilot control-cycle period")
	pilotViews := flag.Int("autopilot-views", 4, "autopilot: max managed views")
	pilotBudget := flag.Float64("autopilot-budget", 0, "autopilot: total stored-row budget for managed views (0 = unbounded)")
	dataDir := flag.String("data-dir", "", "durable storage directory (WAL + checkpoints); empty = in-memory")
	ckptInterval := flag.Duration("checkpoint-interval", 30*time.Second, "background checkpoint period for durable servers")
	flag.Parse()

	log.SetPrefix("vmserver: ")
	log.SetFlags(log.LstdFlags | log.Lmicroseconds)

	cfg := server.Config{
		MaxConcurrent:      *maxConcurrent,
		RequestTimeout:     *timeout,
		CacheSize:          *cacheSize,
		MaxRows:            *maxRows,
		RepairInterval:     *repairInterval,
		DataDir:            *dataDir,
		CheckpointInterval: *ckptInterval,
	}
	if *pilot {
		cfg.Autopilot = &autopilot.Config{
			Interval:  *pilotInterval,
			MaxViews:  *pilotViews,
			RowBudget: *pilotBudget,
		}
		log.Printf("autopilot armed: interval=%v, max views=%d, row budget=%g",
			*pilotInterval, *pilotViews, *pilotBudget)
	}

	var inj *faults.Injector
	if *faultRate > 0 {
		inj = faults.New(*seed)
		inj.AddAll(faults.Rule{Rate: *faultRate})
	}

	var srv *server.Server
	if *dataDir != "" {
		// Durable startup: open the socket first so orchestrators see
		// "recovering" instead of connection-refused, recover in the
		// background, then open the gate.
		srv = server.NewRecovering(cfg)
		go func() {
			log.Printf("recovering from %s...", *dataDir)
			res, err := wal.Open(*dataDir, wal.Options{
				NewCatalog: func() *catalog.Catalog { return tpch.NewCatalog(*sf) },
				Bootstrap: func() (*storage.Database, error) {
					log.Printf("empty data dir: generating TPC-H database (sf=%g, seed=%d)...", *sf, *seed)
					return tpch.NewDatabase(*sf, *seed)
				},
				Injector: inj,
			})
			if err != nil {
				log.Fatalf("recovery failed: %v", err)
			}
			srv.Adopt(res)
			if inj != nil {
				// Storage/maintenance sites arm only after recovery; the WAL
				// sites were armed through wal.Options.
				srv.SetFaultInjector(inj)
				log.Printf("CHAOS: fault injection armed at every site with rate %.2f", *faultRate)
			}
			log.Printf("recovered in %.3fs: checkpoint epoch %d, %d record(s) replayed, %d torn dropped, now at epoch %d",
				res.Recovery.DurationSeconds, res.Recovery.CheckpointEpoch,
				res.Recovery.ReplayedRecords, res.Recovery.TornRecordsDropped, res.Recovery.FinalEpoch)
		}()
	} else {
		log.Printf("generating TPC-H database (sf=%g, seed=%d)...", *sf, *seed)
		db, err := tpch.NewDatabase(*sf, *seed)
		if err != nil {
			log.Fatal(err)
		}
		srv = server.New(db, cfg)
		if inj != nil {
			srv.SetFaultInjector(inj)
			log.Printf("CHAOS: fault injection armed at every site with rate %.2f", *faultRate)
		}
	}
	httpSrv := &http.Server{
		Addr:              *addr,
		Handler:           srv.Handler(),
		ReadHeaderTimeout: 5 * time.Second,
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		sig := <-stop
		log.Printf("received %v, draining...", sig)
		ctx, cancel := context.WithTimeout(context.Background(), 10*time.Second)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain incomplete: %v", err)
		}
		if err := httpSrv.Shutdown(ctx); err != nil {
			log.Printf("http shutdown: %v", err)
		}
	}()

	log.Printf("serving on %s (max-concurrent=%d, timeout=%v, cache-size=%d, repair-interval=%v)",
		*addr, *maxConcurrent, *timeout, *cacheSize, *repairInterval)
	if err := httpSrv.ListenAndServe(); err != nil && err != http.ErrServerClosed {
		log.Fatal(err)
	}
	log.Println("shut down cleanly")
}
