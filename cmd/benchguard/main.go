// benchguard compares `go test -bench` output against a committed thresholds
// file and fails if any guarded benchmark's ns/op exceeds its threshold by
// more than the configured margin. It is the CI tripwire for the join path:
// a refactor that silently reverts the late-materialization pipeline to
// row-at-a-time joins shows up as a multiple-x ns/op jump, far above the
// margin, while ordinary -benchtime 1x noise stays inside it.
//
// Usage:
//
//	go test -run '^$' -bench 'BenchmarkExecJoin' -benchtime 1x ./internal/exec/ > out.txt
//	benchguard -thresholds BENCH_thresholds.json out.txt
//
// With no file argument the bench output is read from stdin. Every benchmark
// named in the thresholds file must appear in the input — a guarded bench
// disappearing (renamed, or erroring before it reports) is itself a failure.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"regexp"
	"strconv"
	"strings"
)

// Thresholds is the committed baseline file. NsPerOp maps a benchmark name
// (sub-benchmark path included, GOMAXPROCS suffix excluded) to its ns/op
// ceiling before the margin; a run fails when measured > ceiling*(1+margin%).
type Thresholds struct {
	Description string  `json:"description"`
	ExecBenchSF string  `json:"exec_bench_sf"`
	MarginPct   float64 `json:"margin_pct"`
	// NsPerOp baselines carry generous headroom over measured best-case
	// times because -benchtime 1x takes a single noisy sample.
	NsPerOp map[string]float64 `json:"ns_per_op"`
}

// gomaxprocsSuffix strips the trailing "-N" the bench runner appends, so
// thresholds are stable across machines with different core counts.
var gomaxprocsSuffix = regexp.MustCompile(`-\d+$`)

func main() {
	thrPath := flag.String("thresholds", "BENCH_thresholds.json", "committed thresholds file")
	flag.Parse()
	if err := run(*thrPath, flag.Args()); err != nil {
		fmt.Fprintln(os.Stderr, "benchguard:", err)
		os.Exit(1)
	}
}

func run(thrPath string, args []string) error {
	raw, err := os.ReadFile(thrPath)
	if err != nil {
		return err
	}
	var thr Thresholds
	if err := json.Unmarshal(raw, &thr); err != nil {
		return fmt.Errorf("parsing %s: %w", thrPath, err)
	}
	if len(thr.NsPerOp) == 0 {
		return fmt.Errorf("%s guards no benchmarks", thrPath)
	}
	var in io.Reader = os.Stdin
	if len(args) > 0 {
		f, err := os.Open(args[0])
		if err != nil {
			return err
		}
		defer f.Close()
		in = f
	}
	data, err := io.ReadAll(in)
	if err != nil {
		return err
	}
	measured, err := parseBench(string(data))
	if err != nil {
		return err
	}

	margin := 1 + thr.MarginPct/100
	var failures []string
	for name, base := range thr.NsPerOp {
		got, ok := measured[name]
		if !ok {
			failures = append(failures, fmt.Sprintf("%s: guarded benchmark missing from input", name))
			continue
		}
		limit := base * margin
		status := "ok"
		if got > limit {
			status = "FAIL"
			failures = append(failures, fmt.Sprintf(
				"%s: %.0f ns/op exceeds threshold %.0f ns/op (+%.0f%% margin over baseline %.0f)",
				name, got, limit, thr.MarginPct, base))
		}
		fmt.Printf("%-44s %14.0f ns/op  limit %14.0f  %s\n", name, got, limit, status)
	}
	if len(failures) > 0 {
		return fmt.Errorf("%d regression(s):\n  %s", len(failures), strings.Join(failures, "\n  "))
	}
	return nil
}

// parseBench extracts "Benchmark.../sub-N <iters> <ns> ns/op ..." lines into
// a name→ns/op map, keeping the slowest sample when a name repeats (-count>1).
func parseBench(out string) (map[string]float64, error) {
	res := make(map[string]float64)
	for _, line := range strings.Split(out, "\n") {
		fields := strings.Fields(line)
		if len(fields) < 4 || !strings.HasPrefix(fields[0], "Benchmark") {
			continue
		}
		nsIdx := -1
		for i, f := range fields {
			if f == "ns/op" {
				nsIdx = i
				break
			}
		}
		if nsIdx < 2 {
			continue
		}
		ns, err := strconv.ParseFloat(fields[nsIdx-1], 64)
		if err != nil {
			return nil, fmt.Errorf("parsing ns/op in %q: %w", line, err)
		}
		name := gomaxprocsSuffix.ReplaceAllString(fields[0], "")
		if prev, ok := res[name]; !ok || ns > prev {
			res[name] = ns
		}
	}
	if len(res) == 0 {
		return nil, fmt.Errorf("no benchmark result lines found in input")
	}
	return res, nil
}
