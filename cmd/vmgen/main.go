// Command vmgen dumps the generated experiment workload (§5) as SQL-ish text
// so the random views and queries can be inspected or replayed elsewhere.
//
//	vmgen -kind views -n 10 [-seed 1]
//	vmgen -kind queries -n 10 [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"matview/internal/tpch"
	"matview/internal/workload"
)

func main() {
	kind := flag.String("kind", "views", "views or queries")
	n := flag.Int("n", 10, "number of statements to generate")
	seed := flag.Int64("seed", 1, "workload seed")
	sf := flag.Float64("sf", 0.5, "TPC-H scale factor (affects cardinality targeting)")
	flag.Parse()

	cat := tpch.NewCatalog(*sf)
	gen := workload.New(cat, workload.DefaultConfig(*seed))
	switch *kind {
	case "views":
		for i := 0; i < *n; i++ {
			v := gen.View(i)
			fmt.Printf("-- view %d (%d tables, aggregate=%v)\n", i, len(v.Tables), v.IsAggregate())
			fmt.Printf("CREATE VIEW mv%04d WITH SCHEMABINDING AS %s;\n\n", i, v.String())
		}
	case "queries":
		for i := 0; i < *n; i++ {
			q := gen.Query(i)
			fmt.Printf("-- query %d (%d tables, aggregate=%v)\n", i, len(q.Tables), q.IsAggregate())
			fmt.Printf("%s;\n\n", q.String())
		}
	default:
		fmt.Fprintf(os.Stderr, "unknown kind %q\n", *kind)
		os.Exit(2)
	}
}
