// Command vmadvisor demonstrates the view-design side of the paper's problem
// triple (§1): it generates (or takes) a query workload, derives candidate
// materialized views from the queries' SPJG shapes, evaluates each candidate
// with the real optimizer and cost model, and greedily recommends a set under
// a storage budget.
//
//	vmadvisor [-queries 20] [-views 5] [-budget 0] [-seed 1]
package main

import (
	"flag"
	"fmt"
	"os"

	"matview/internal/advisor"
	"matview/internal/opt"
	"matview/internal/spjg"
	"matview/internal/tpch"
	"matview/internal/workload"
)

func main() {
	nQueries := flag.Int("queries", 20, "number of workload queries to generate")
	maxViews := flag.Int("views", 5, "maximum number of recommended views")
	budget := flag.Float64("budget", 0, "total estimated view rows allowed (0 = unlimited)")
	seed := flag.Int64("seed", 1, "workload seed")
	sf := flag.Float64("sf", 0.5, "TPC-H scale factor for statistics")
	flag.Parse()

	cat := tpch.NewCatalog(*sf)
	gen := workload.New(cat, workload.DefaultConfig(*seed))
	var queries []*spjg.Query
	for i := 0; len(queries) < *nQueries; i++ {
		q := gen.Query(i)
		if q.Validate() == nil {
			queries = append(queries, q)
		}
	}
	fmt.Printf("workload: %d generated queries (seed %d, SF %g)\n\n", len(queries), *seed, *sf)

	recs, err := advisor.Recommend(cat, queries, advisor.Config{
		MaxViews:  *maxViews,
		RowBudget: *budget,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmadvisor:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("no beneficial views found")
		return
	}
	fmt.Printf("recommended %d view(s):\n\n", len(recs))
	totalBenefit, totalRows := 0.0, 0.0
	for i, r := range recs {
		fmt.Printf("%d. %s  (est. %.0f rows, benefit %.0f cost units, improves %d queries)\n",
			i+1, r.Name, r.Rows, r.Benefit, len(r.Queries))
		fmt.Printf("   CREATE VIEW %s WITH SCHEMABINDING AS %s\n\n", r.Name, r.Def.String())
		totalBenefit += r.Benefit
		totalRows += r.Rows
	}

	// Show the before/after workload cost.
	base := opt.NewOptimizer(cat, opt.DefaultOptions())
	with := opt.NewOptimizer(cat, opt.DefaultOptions())
	for _, r := range recs {
		if _, err := with.RegisterView(r.Name, r.Def); err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
	}
	baseCost, withCost, usingViews := 0.0, 0.0, 0
	for _, q := range queries {
		rb, err := base.Optimize(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
		rw, err := with.Optimize(q)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
		baseCost += rb.Cost
		withCost += rw.Cost
		if rw.UsesView {
			usingViews++
		}
	}
	fmt.Printf("workload cost: %.0f -> %.0f (%.1fx); %d/%d plans now use views; %.0f view rows stored\n",
		baseCost, withCost, baseCost/withCost, usingViews, len(queries), totalRows)
}
