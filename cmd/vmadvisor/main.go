// Command vmadvisor demonstrates the view-design side of the paper's problem
// triple (§1): it takes a query workload — synthetic, or mined from a live
// server — derives candidate materialized views from the queries' SPJG
// shapes, evaluates each candidate with the real optimizer and cost model,
// and recommends a set under a storage budget (greedy seed refined by local
// search).
//
//	vmadvisor [-queries 20] [-views 5] [-budget 0] [-seed 1]
//	vmadvisor -workload FILE [-views 5] [-budget 0]
//
// -workload replaces the generated workload with a recorded fingerprint
// histogram: either the GET /autopilot response of a running vmserver or a
// bare JSON array of its "workload" entries. Each entry's SQL is re-parsed
// against the catalog and weighted by its decayed frequency, so the
// recommendation reflects what the server is actually being asked, not a
// synthetic guess.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"matview/internal/advisor"
	"matview/internal/autopilot"
	"matview/internal/catalog"
	"matview/internal/opt"
	"matview/internal/sqlparser"
	"matview/internal/tpch"
	"matview/internal/workload"
)

func main() {
	nQueries := flag.Int("queries", 20, "number of workload queries to generate")
	maxViews := flag.Int("views", 5, "maximum number of recommended views")
	budget := flag.Float64("budget", 0, "total estimated view rows allowed (0 = unlimited)")
	seed := flag.Int64("seed", 1, "workload seed")
	sf := flag.Float64("sf", 0.5, "TPC-H scale factor for statistics")
	workloadFile := flag.String("workload", "", "recorded workload file (GET /autopilot dump or bare entry array); replaces the generated workload")
	moves := flag.Int("local-search", 64, "local-search evaluation budget (0 disables refinement)")
	flag.Parse()

	cat := tpch.NewCatalog(*sf)
	var wl []advisor.WeightedQuery
	if *workloadFile != "" {
		var err error
		wl, err = loadRecordedWorkload(cat, *workloadFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
		fmt.Printf("workload: %d recorded statement shapes from %s (SF %g statistics)\n\n",
			len(wl), *workloadFile, *sf)
	} else {
		gen := workload.New(cat, workload.DefaultConfig(*seed))
		for i := 0; len(wl) < *nQueries; i++ {
			q := gen.Query(i)
			if q.Validate() == nil {
				wl = append(wl, advisor.WeightedQuery{Query: q, Weight: 1})
			}
		}
		fmt.Printf("workload: %d generated queries (seed %d, SF %g)\n\n", len(wl), *seed, *sf)
	}

	recs, err := advisor.RecommendWorkload(cat, wl, advisor.Config{
		MaxViews:         *maxViews,
		RowBudget:        *budget,
		LocalSearchMoves: *moves,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "vmadvisor:", err)
		os.Exit(1)
	}
	if len(recs) == 0 {
		fmt.Println("no beneficial views found")
		return
	}
	fmt.Printf("recommended %d view(s):\n\n", len(recs))
	totalBenefit, totalRows := 0.0, 0.0
	for i, r := range recs {
		fmt.Printf("%d. %s  (est. %.0f rows, benefit %.0f cost units, improves %d queries)\n",
			i+1, r.Name, r.Rows, r.Benefit, len(r.Queries))
		fmt.Printf("   CREATE VIEW %s WITH SCHEMABINDING AS %s\n\n", r.Name, r.Def.String())
		totalBenefit += r.Benefit
		totalRows += r.Rows
	}

	// Show the before/after workload cost, weighted like the selection was.
	base := opt.NewOptimizer(cat, opt.DefaultOptions())
	with := opt.NewOptimizer(cat, opt.DefaultOptions())
	for _, r := range recs {
		if _, err := with.RegisterView(r.Name, r.Def); err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
	}
	baseCost, withCost, usingViews := 0.0, 0.0, 0
	for _, wq := range wl {
		rb, err := base.Optimize(wq.Query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
		rw, err := with.Optimize(wq.Query)
		if err != nil {
			fmt.Fprintln(os.Stderr, "vmadvisor:", err)
			os.Exit(1)
		}
		baseCost += wq.Weight * rb.Cost
		withCost += wq.Weight * rw.Cost
		if rw.UsesView {
			usingViews++
		}
	}
	fmt.Printf("workload cost: %.0f -> %.0f (%.1fx); %d/%d plans now use views; %.0f view rows stored\n",
		baseCost, withCost, baseCost/withCost, usingViews, len(wl), totalRows)
}

// loadRecordedWorkload reads a recorded fingerprint histogram and re-parses
// each entry's SQL against the catalog. Entries that fail to parse (e.g. a
// shape outside the supported grammar) are reported and skipped, not fatal:
// a live histogram legitimately mixes parsable and exotic statements.
func loadRecordedWorkload(cat *catalog.Catalog, path string) ([]advisor.WeightedQuery, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var entries []autopilot.WorkloadEntry
	// Accept the full GET /autopilot response or a bare entry array.
	var status struct {
		Workload []autopilot.WorkloadEntry `json:"workload"`
	}
	if err := json.Unmarshal(data, &status); err == nil && len(status.Workload) > 0 {
		entries = status.Workload
	} else if err := json.Unmarshal(data, &entries); err != nil {
		return nil, fmt.Errorf("%s: not a recorded workload (expected /autopilot dump or entry array): %w", path, err)
	}
	var wl []advisor.WeightedQuery
	for _, e := range entries {
		q, err := sqlparser.ParseQuery(cat, e.SQL)
		if err != nil {
			fmt.Fprintf(os.Stderr, "vmadvisor: skipping %q: %v\n", e.SQL, err)
			continue
		}
		w := e.Weight
		if w <= 0 {
			w = float64(e.Count)
		}
		wl = append(wl, advisor.WeightedQuery{Query: q, Weight: w})
	}
	if len(wl) == 0 {
		return nil, fmt.Errorf("%s: no parsable statements in recorded workload", path)
	}
	return wl, nil
}
