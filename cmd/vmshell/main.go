// Command vmshell is an interactive shell over the engine: it loads a
// TPC-H-shaped database and accepts
//
//   - CREATE VIEW ... AS SELECT ...   (materialize + register + maintain)
//   - CREATE [UNIQUE] INDEX ... ON view_or_table (cols)
//   - SELECT ... / EXPLAIN SELECT ... (optimized; views used when cheaper)
//   - INSERT INTO t VALUES (...)      (incremental view maintenance)
//   - DELETE FROM t [WHERE ...]       (incremental view maintenance)
//
// Meta commands: \views, \stats, \quit. Statements end with ';'.
//
// With -data-dir the session is durable: statements are WAL-logged before
// they commit, startup recovers checkpoint+log from the directory (first run
// generates TPC-H data), and quitting cleanly writes a final checkpoint so
// the next start replays nothing.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"matview/internal/catalog"
	"matview/internal/shell"
	"matview/internal/storage"
	"matview/internal/tpch"
	"matview/internal/wal"
)

func main() {
	sf := flag.Float64("sf", 0.001, "TPC-H scale factor for generated data")
	seed := flag.Int64("seed", 42, "data generator seed")
	dataDir := flag.String("data-dir", "", "durable storage directory (WAL + checkpoints); empty = in-memory")
	flag.Parse()

	var s *shell.Session
	var mgr *wal.Manager
	if *dataDir != "" {
		fmt.Printf("recovering from %s (TPC-H SF %g, seed %d on first run)...\n", *dataDir, *sf, *seed)
		res, err := wal.Open(*dataDir, wal.Options{
			NewCatalog: func() *catalog.Catalog { return tpch.NewCatalog(*sf) },
			Bootstrap:  func() (*storage.Database, error) { return tpch.NewDatabase(*sf, *seed) },
		})
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s, mgr = res.Session, res.Manager
		fmt.Printf("recovered in %.3fs: %d record(s) replayed, epoch %d\n",
			res.Recovery.DurationSeconds, res.Recovery.ReplayedRecords, res.Recovery.FinalEpoch)
		defer func() {
			// Clean exit: checkpoint the final state so the next start
			// recovers it without replaying the log.
			if err := mgr.Checkpoint(wal.GatherSpec(s.DB, s)); err != nil {
				fmt.Fprintln(os.Stderr, "final checkpoint:", err)
			}
			_ = mgr.Close()
		}()
	} else {
		fmt.Printf("loading TPC-H data at SF %g (seed %d)...\n", *sf, *seed)
		db, err := tpch.NewDatabase(*sf, *seed)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		s = shell.NewSession(db)
	}

	fmt.Println("ready. end statements with ';'. try: select l_partkey, sum(l_quantity) as q from lineitem group by l_partkey;")
	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	var buf strings.Builder
	prompt := func() { fmt.Print("vm> ") }
	prompt()
	for sc.Scan() {
		line := sc.Text()
		trimmed := strings.TrimSpace(line)
		if buf.Len() == 0 && strings.HasPrefix(trimmed, "\\") {
			if !s.Meta(trimmed, os.Stdout) {
				return
			}
			prompt()
			continue
		}
		buf.WriteString(line)
		buf.WriteByte('\n')
		if !strings.Contains(line, ";") {
			fmt.Print(" -> ")
			continue
		}
		stmt := strings.TrimSpace(strings.TrimSuffix(strings.TrimSpace(buf.String()), ";"))
		buf.Reset()
		if stmt != "" {
			if err := s.Execute(stmt, os.Stdout); err != nil {
				fmt.Println("error:", err)
			}
		}
		prompt()
	}
}
