#!/bin/sh
# Reproduce everything: build, test, run every example, regenerate the
# paper's evaluation, and run the benchmarks. Outputs land in the repo root
# (test_output.txt, bench_output.txt, results_full.txt).
set -eu

echo "== build & vet =="
go build ./...
go vet ./...

echo "== tests =="
go test ./... 2>&1 | tee test_output.txt

echo "== race tests (concurrent optimizer / filter tree) =="
go test -race ./... 2>&1 | tee race_output.txt

echo "== crash recovery (WAL kill matrix, checkpoint faults) =="
make recover 2>&1 | tee recover_output.txt

echo "== examples =="
for ex in quickstart tpch_reporting viewcache scalability maintenance; do
    echo "-- examples/$ex"
    go run "./examples/$ex"
done

echo "== paper evaluation (Figures 2-4 + statistics) =="
go run ./cmd/vmbench -experiment all -views 1000 -queries 1000 -step 100 \
    2>&1 | tee results_full.txt

echo "== benchmarks =="
go test -bench=. -benchmem ./... 2>&1 | tee bench_output.txt

echo "== advisor demo =="
go run ./cmd/vmadvisor -queries 15 -views 3
